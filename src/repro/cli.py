"""The ``repro`` command-line front end (paper section 8's usage model).

One entry point; inline commands built on the session API::

    repro synth  <coredump.json> <program.minic> [--deadlock] [-o exec.json]
                 [--workers N] [--checkpoint ckpt.json]
    repro resume <ckpt.json> [-o exec.json] [--workers N]
    repro play   <program.minic> <exec.json> [--mode strict|happens-before]
                 [--coverage [cov.json]]
    repro repair <coredump.json> <program.minic> [-o patch.json]
                 [--passing N] [--suspects K] [--json]
    repro lint   (<program.minic> | --workload NAME) [--patch patch.json]
                 [--format text|json] [-o lint.json]
    repro analyze (<program.minic> | --workload NAME) [-o analysis.json]
    repro triage <program.minic> <coredump.json> [...] [--db triage.json]
    repro bench  [--workload ls1] [--reports 4] [--json]

plus the job-service commands built on :mod:`repro.service`::

    repro serve  [--port 8377] [--store DIR] [--max-workers N] [--spool DIR]
    repro submit (<coredump.json> <program.minic> | --workload NAME)
                 [--url URL] [--priority N] [--wait]
    repro status [JOB_ID] [--url URL] [--events] [--follow] [--json]
    repro fetch  JOB_ID [-o exec.json] [--url URL] [--wait] [--kind KIND]
    repro stats  [--url URL] [--prometheus] [--json]
    repro trace  TRACE_JSON [--chrome out.json] [--json]
    repro explain FLIGHT_JSON [--diff OTHER] [--json]

Observability: ``repro synth --trace PATH`` records a hierarchical span
trace (``esd-trace-v1``) of the whole synthesis -- static/search/solve
phases, search quanta, slow solver queries -- without perturbing the
output artifact (byte-identical either way).  ``repro trace`` summarizes
such a file and converts it to Chrome trace-event JSON for Perfetto.
``repro synth --flight PATH`` records the search flight log
(``esd-searchlog-v1``): one compact record per search decision -- pick
(queue, proximity score, cost deltas), lineage, and per-layer kill
attribution -- which ``repro explain`` turns into the goal path's
decision chain, per-subsystem budget spend, and A/B diffs of two runs.
``repro serve --trace``/``--flight`` record one trace/flight log per job
(``repro fetch --kind trace|flight``); ``repro status JOB --follow``
streams a running job's events live over server-sent events; ``repro
stats`` reads the live daemon's unified metrics registry (the same data
Prometheus scrapes from ``/metrics``).

The coredump file holds a serialized :class:`~repro.coredump.BugReport`
(``BugReport.to_dict``); the program is MiniC source; the execution file is
what ``repro synth`` writes and ``repro play`` (or the :class:`~repro.
debugger.Debugger`) consumes.  ``repro triage`` pushes a stream of reports
through one session -- static analysis runs once -- and deduplicates them
by synthesized-execution fingerprint; ``--db PATH`` persists the triage
database so deduplication accumulates across invocations.  ``repro bench``
measures session amortization on a bundled workload.  ``--json`` switches
triage and bench to machine-readable output on stdout for CI and
downstream tools.

``repro synth --workers N`` shards the path search across N worker
processes (work-stealing, first-win); ``--checkpoint PATH`` writes periodic
frontier checkpoints so ``repro resume PATH`` continues a killed or
budget-exhausted synthesis instead of restarting it.  With a checkpoint
path, SIGTERM/SIGINT trigger a final checkpoint and a clean exit (reason
``interrupted``) instead of losing the search.

``repro serve`` runs the job daemon: submit/status/events/result/cancel
over stdlib HTTP, artifacts in a content-addressed store, graceful
SIGTERM drain that re-queues in-flight jobs as resumable.  ``repro
submit|status|fetch`` are the matching client commands.

``repro lint`` runs the whole-module static lint (abstract-interpretation
bug smells, lockset/lock-order concurrency smells, IR hygiene) and exits
non-zero when findings exist; ``--patch`` applies a stored patch first so CI
can assert a repaired program lints clean.  ``repro analyze`` dumps the full
static pipeline -- CFGs, call graph, proximity costs, abstract-interpretation
and concurrency facts -- as one ``esd-analysis-v1`` JSON document.

``repro repair`` runs the automated-repair pipeline (spectrum-based fault
localization over stepper coverage, template/constraint patch synthesis,
paper-section-8 validation) and writes the validated patch as JSON;
``repro play --coverage`` emits the per-function/per-line hit counts the
localizer consumes.  ``repro submit --repair`` queues the same pipeline as
a service job whose patch lands in the artifact store (``repro fetch
--kind patch``).

``esdsynth`` and ``esdplay`` remain as deprecated shims over ``repro synth``
and ``repro play``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import __version__
from .api import ReproSession, UnknownStrategyError, available_searchers
from .core import ESDConfig, ExecutionFile, GoalError, TriageDatabase
from .coredump import BugReport
from .frontend import FrontendError
from .lang import CompileError, LexError, ParseError, compile_source
from .schema import SchemaVersionError
from .search import SynthesisEvent

# Everything loading a bad input file can raise: unreadable/malformed/
# wrong-shaped JSON (OSError, ValueError, KeyError, TypeError) or an
# uncompilable program (Lex/Parse/CompileError for MiniC, FrontendError
# for Python).  Deliberately NOT wrapped around the synthesis pipeline
# itself: an internal error there is a bug to surface, not a bad input to
# report politely (GoalError is the one input-shaped error synthesis
# raises, handled separately).
_INPUT_ERRORS = (
    OSError, ValueError, KeyError, TypeError, LexError, ParseError,
    CompileError, FrontendError,
)


def _describe(exc: BaseException) -> str:
    # str(KeyError) is just the quoted key; say what it means.  The missing
    # key may be in the report or the execution file, so stay generic.
    if isinstance(exc, KeyError):
        return f"input file is missing required field {exc}"
    return str(exc)


def _load_report(path: str) -> BugReport:
    return BugReport.from_dict(json.loads(Path(path).read_text()))


def _program_lang(path: str, lang: str | None) -> str:
    """An explicit ``--lang`` wins; otherwise the file extension decides
    (``.py`` is Python, everything else MiniC)."""
    if lang:
        return lang
    return "python" if path.endswith(".py") else "esd"


def _compile_program(path: str, lang: str | None):
    source = Path(path).read_text()
    name = Path(path).stem
    if _program_lang(path, lang) == "python":
        from .frontend import compile_python_source

        return compile_python_source(source, name)
    return compile_source(source, name)


def _make_session(program: str, trace: bool = False, flight: bool = False,
                  lang: str | None = None) -> ReproSession:
    return ReproSession(_compile_program(program, lang), trace=trace,
                        flight=flight)


def _make_config(args: argparse.Namespace) -> ESDConfig:
    """Build the synthesis config from CLI flags.

    Only the flags the user set override :class:`ESDConfig`'s defaults; in
    particular the 20M-instruction default budget survives a bare
    ``--max-seconds`` (the old CLI rebuilt the whole SearchBudget and
    silently shrank it to 2M).
    """
    config = ESDConfig(
        seed=args.seed,
        strategy=getattr(args, "strategy", "esd"),
        with_race_detection=getattr(args, "with_race_det", False),
    )
    if args.max_seconds is not None:
        config.budget.max_seconds = args.max_seconds
    if getattr(args, "max_instructions", None) is not None:
        config.budget.max_instructions = args.max_instructions
    return config


def _progress_printer(label: str):
    def on_event(event: SynthesisEvent) -> None:
        print(
            f"{label}: [{event.kind}] {event.instructions} instrs, "
            f"{event.states} states, {event.pending} pending, "
            f"{event.seconds:.1f}s"
            + (f" ({event.reason or event.detail})"
               if event.reason or event.detail else ""),
            file=sys.stderr,
        )

    return on_event


# ---------------------------------------------------------------------------
# Subcommand implementations (shared with the deprecated shims)
# ---------------------------------------------------------------------------


def _finish_synth(result, args: argparse.Namespace, label: str) -> int:
    """Common tail of synth/resume: report the outcome, save the artifact."""
    if not result.found:
        print(f"{label}: no execution found ({result.reason}); "
              f"explored {result.instructions} instructions "
              f"in {result.total_seconds:.1f}s", file=sys.stderr)
        if (getattr(args, "checkpoint", None)
                and result.reason in ("budget", "interrupted")):
            print(f"{label}: frontier checkpoint at {args.checkpoint}; "
                  f"continue with `repro resume {args.checkpoint}`",
                  file=sys.stderr)
        return 1
    assert result.execution_file is not None
    try:
        result.execution_file.save(args.output)
    except OSError as exc:
        print(f"{label}: cannot write {args.output}: {exc}", file=sys.stderr)
        return 1
    print(f"{label}: synthesized execution for: {result.execution_file.bug_summary}")
    print(f"{label}: static phase {result.static_seconds:.2f}s, "
          f"search {result.search_seconds:.2f}s, "
          f"{result.instructions} instructions explored")
    print(f"{label}: wrote {args.output}")
    return 0


def _run_synth(args: argparse.Namespace, label: str) -> int:
    on_progress = (
        _progress_printer(label) if getattr(args, "progress", False) else None
    )
    trace_path = getattr(args, "trace", None)
    flight_path = getattr(args, "flight", None)
    try:
        report = _load_report(args.coredump)
        if args.bug_type:
            report.bug_type = args.bug_type
        session = _make_session(args.program, trace=trace_path is not None,
                                flight=flight_path is not None,
                                lang=getattr(args, "lang", None))
    except _INPUT_ERRORS as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    from .distrib import DistribUnsupportedError

    try:
        result = session.synthesize(
            report, _make_config(args),
            on_progress=on_progress,
            workers=getattr(args, "workers", None),
            checkpoint_path=getattr(args, "checkpoint", None),
            checkpoint_interval=getattr(args, "checkpoint_interval", 5.0),
            # With a checkpoint path, SIGTERM/SIGINT write one final
            # checkpoint and exit cleanly instead of losing the search.
            handle_signals=bool(getattr(args, "checkpoint", None)),
        )
    except UnknownStrategyError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 2
    except DistribUnsupportedError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 2
    except GoalError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    if trace_path is not None:
        try:
            session.save_trace(trace_path)
        except OSError as exc:
            print(f"{label}: cannot write {trace_path}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{label}: wrote span trace to {trace_path} "
              f"(inspect with `repro trace {trace_path}`)", file=sys.stderr)
    if flight_path is not None:
        try:
            session.save_flight(flight_path)
        except OSError as exc:
            print(f"{label}: cannot write {flight_path}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{label}: wrote search flight log to {flight_path} "
              f"(inspect with `repro explain {flight_path}`)",
              file=sys.stderr)
    return _finish_synth(result, args, label)


def _run_resume(args: argparse.Namespace, label: str) -> int:
    from .distrib import CheckpointError, ExplorationCheckpoint

    on_progress = (
        _progress_printer(label) if getattr(args, "progress", False) else None
    )
    try:
        checkpoint = ExplorationCheckpoint.load(args.checkpoint_file)
    except CheckpointError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    if args.max_seconds is not None:
        checkpoint.config.budget.max_seconds = args.max_seconds
    if args.max_instructions is not None:
        checkpoint.config.budget.max_instructions = args.max_instructions
    session = ReproSession.from_checkpoint(checkpoint, on_progress=on_progress)
    print(f"{label}: resuming {checkpoint.module.name!r} with "
          f"{checkpoint.pending} frontier state(s), "
          f"{checkpoint.instructions} instructions already explored",
          file=sys.stderr)
    result = session.resume(
        checkpoint,
        workers=args.workers,
        checkpoint_path=args.checkpoint or args.checkpoint_file,
        checkpoint_interval=getattr(args, "checkpoint_interval", 5.0),
        handle_signals=True,
    )
    args.checkpoint = args.checkpoint or args.checkpoint_file
    return _finish_synth(result, args, label)


def _run_play(args: argparse.Namespace, label: str) -> int:
    try:
        session = _make_session(args.program, lang=getattr(args, "lang", None))
        execution = ExecutionFile.load(args.execution)
    except _INPUT_ERRORS as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    if getattr(args, "coverage", None) is not None:
        return _run_play_coverage(session, execution, args, label)
    result = session.play_back(execution, mode=args.mode)
    if result.bug is not None:
        print(f"{label}: reproduced {result.bug.summary()}")
    if result.output:
        print(f"{label}: program output:")
        for line in result.output:
            print(f"  {line}")
    if not result.bug_reproduced:
        print(f"{label}: execution did NOT reproduce the recorded bug",
              file=sys.stderr)
        return 1
    return 0


def _run_play_coverage(session, execution, args: argparse.Namespace,
                       label: str) -> int:
    """Replay through the stepper and emit per-function/per-line hit counts
    as JSON (stdout, or the path given to ``--coverage``)."""
    from .playback import PlaybackDivergenceError, collect_coverage

    try:
        coverage = collect_coverage(session.module, execution)
    except PlaybackDivergenceError as exc:
        print(f"{label}: coverage replay diverged: {exc}", file=sys.stderr)
        return 1
    payload = json.dumps(coverage.to_dict(), indent=2)
    if args.coverage == "-":
        print(payload)
    else:
        try:
            Path(args.coverage).write_text(payload + "\n")
        except OSError as exc:
            print(f"{label}: cannot write {args.coverage}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{label}: wrote coverage for {coverage.steps} executed "
              f"instructions to {args.coverage}", file=sys.stderr)
    return 0


def _run_repair(args: argparse.Namespace, label: str) -> int:
    from .repair import LocalizationError, RepairConfig

    on_progress = (
        _progress_printer(label) if getattr(args, "progress", False) else None
    )
    try:
        report = _load_report(args.coredump)
        if args.bug_type:
            report.bug_type = args.bug_type
        session = _make_session(args.program, lang=getattr(args, "lang", None))
    except _INPUT_ERRORS as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    config = RepairConfig(
        max_suspects=args.suspects,
        passing_count=args.passing,
        formula=args.formula,
        esd=_make_config(args),
    )
    try:
        result = session.repair(report, config=config,
                                on_progress=on_progress)
    except UnknownStrategyError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 2
    except (GoalError, LocalizationError) as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps({
            "found": result.found,
            "reason": result.reason,
            "patch": result.patch.to_dict() if result.patch else None,
            "localization": (result.localization.to_dict()
                             if result.localization else None),
            "candidates_tried": result.candidates_tried,
            "seconds": round(result.seconds, 6),
        }, indent=2))
    else:
        if result.localization is not None:
            print(f"{label}: top suspects "
                  f"({result.localization.formula}, "
                  f"{result.localization.passing_count} passing run(s)):")
            for rank, suspect in enumerate(result.localization.top(5), 1):
                print(f"{label}:   #{rank} {suspect.function}:{suspect.line} "
                      f"score {suspect.score:.3f}"
                      + (" [end-site]" if suspect.boosted else ""))
        if result.found:
            validation = result.patch.validation
            print(f"{label}: PATCHED -- {result.patch.description}")
            print(f"{label}: validated: re-synthesis "
                  f"{validation.resynthesis_reason!r}, "
                  f"{len(validation.passing)} passing run(s) preserved "
                  f"({validation.identical_replays} byte-identical), "
                  f"{result.candidates_tried} candidate(s) tried "
                  f"in {result.seconds:.1f}s")
        else:
            print(f"{label}: no validated patch ({result.reason}); "
                  f"{result.candidates_tried} candidate(s) tried "
                  f"in {result.seconds:.1f}s", file=sys.stderr)
    if not result.found:
        return 1
    try:
        Path(args.output).write_text(
            json.dumps(result.patch.to_dict(), indent=2) + "\n"
        )
    except OSError as exc:
        print(f"{label}: cannot write {args.output}: {exc}", file=sys.stderr)
        return 1
    if not args.json:
        print(f"{label}: wrote {args.output}")
    return 0


def _run_triage(args: argparse.Namespace, label: str) -> int:
    as_json = getattr(args, "json", False)
    try:
        session = _make_session(args.program, lang=getattr(args, "lang", None))
    except _INPUT_ERRORS as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    db_path = getattr(args, "db", None)
    preloaded = 0
    if db_path and Path(db_path).exists():
        # Accumulate across invocations: new reports dedupe against every
        # bug the persisted database already knows.
        try:
            session.triage_db = TriageDatabase.load(db_path)
        except (SchemaVersionError, *_INPUT_ERRORS) as exc:
            print(f"{label}: cannot load triage db {db_path}: "
                  f"{_describe(exc)}", file=sys.stderr)
            return 1
        preloaded = len(session.triage_db)
    config = _make_config(args)
    failures = 0
    records = []
    for path in args.coredumps:
        record = {"report": str(path), "bug_id": None, "new": False,
                  "error": None, "reason": None, "seconds": None}
        records.append(record)
        try:
            report = _load_report(path)
            if getattr(args, "bug_type", None):
                report.bug_type = args.bug_type
        except _INPUT_ERRORS as exc:
            # One unreadable/malformed report must not abort the batch.
            failures += 1
            record["error"] = _describe(exc)
            print(f"{label}: {path}: {_describe(exc)}", file=sys.stderr)
            continue
        try:
            outcome = session.triage(report, config)
        except UnknownStrategyError as exc:
            # A config typo, not a per-report problem: no report would work.
            print(f"{label}: {exc}", file=sys.stderr)
            return 2
        except GoalError as exc:
            failures += 1
            record["error"] = str(exc)
            print(f"{label}: {path}: {exc}", file=sys.stderr)
            continue
        record["reason"] = outcome.result.reason
        record["seconds"] = round(outcome.result.total_seconds, 6)
        if outcome.bug_id is None:
            failures += 1
            record["error"] = f"synthesis failed ({outcome.result.reason})"
            print(f"{label}: {path}: synthesis failed "
                  f"({outcome.result.reason})", file=sys.stderr)
            continue
        record["bug_id"] = outcome.bug_id
        record["new"] = outcome.is_new
        entry = session.triage_db.entry(outcome.bug_id)
        record["patched"] = bool(entry is not None and entry.patched)
        if not as_json:
            status = "NEW" if outcome.is_new else "duplicate"
            patched = ", patched" if record["patched"] else ""
            print(f"{label}: {path} -> bug #{outcome.bug_id} ({status}{patched}, "
                  f"synthesized in {outcome.result.total_seconds:.2f}s)")
    if db_path:
        try:
            session.triage_db.save(db_path)
        except OSError as exc:
            print(f"{label}: cannot write triage db {db_path}: {exc}",
                  file=sys.stderr)
            return 1
    if as_json:
        print(json.dumps({
            "program": args.program,
            "reports": records,
            "distinct_bugs": len(session.triage_db),
            "patched_bugs": session.triage_db.patched_count,
            "preloaded_bugs": preloaded,
            "db": db_path,
            "failures": failures,
            "static_distance_builds": session.static_stats.distance_builds,
        }, indent=2))
    else:
        print(f"{label}: {len(session.triage_db)} distinct bug(s) "
              f"from {len(args.coredumps)} report(s)"
              + (f" + {preloaded} preloaded from {db_path}" if preloaded
                 else "")
              + f"; static analysis ran "
                f"{session.static_stats.distance_builds} time(s)")
        if db_path:
            patched = session.triage_db.patched_count
            print(f"{label}: triage db saved to {db_path} "
                  f"({len(session.triage_db)} bugs, "
                  f"{patched} patched, "
                  f"{len(session.triage_db) - patched} unpatched)")
    return 1 if failures else 0


def _load_lintable_module(args: argparse.Namespace, label: str):
    """The compile-then-maybe-patch front shared by lint and analyze.

    Returns the module or None (after printing the error).  ``--workload``
    compiles a bundled workload instead of a source file; ``--patch`` applies
    a stored ``esd-patch-v1`` document first, so CI can assert the patched
    variant of a seeded bug lints clean.
    """
    try:
        if getattr(args, "workload", None):
            if args.program:
                print(f"{label}: give either a program file or --workload, "
                      f"not both", file=sys.stderr)
                return None
            from .workloads import ALL, get

            if args.workload not in ALL:
                print(f"{label}: unknown workload {args.workload!r}; "
                      f"available: {', '.join(sorted(ALL))}", file=sys.stderr)
                return None
            module = get(args.workload).compile()
        elif args.program:
            module = _compile_program(args.program,
                                      getattr(args, "lang", None))
        else:
            print(f"{label}: need a program file or --workload NAME",
                  file=sys.stderr)
            return None
        if getattr(args, "patch", None):
            from .repair import Patch

            patch = Patch.from_dict(json.loads(Path(args.patch).read_text()))
            module = patch.apply_to(module)
    except (SchemaVersionError, *_INPUT_ERRORS) as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return None
    return module


def _run_lint(args: argparse.Namespace, label: str) -> int:
    from .analysis import lint_module

    module = _load_lintable_module(args, label)
    if module is None:
        return 2
    report = lint_module(module)
    payload = json.dumps(report.to_dict(), indent=2)
    if args.output:
        try:
            Path(args.output).write_text(payload + "\n")
        except OSError as exc:
            print(f"{label}: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
    if args.json or args.format == "json":
        print(payload)
    else:
        if report.clean:
            print(f"{label}: {module.name}: clean")
        else:
            for finding in report.findings:
                print(f"{label}: {module.name}: {finding.function}:"
                      f"{finding.line}: [{finding.rule}] {finding.message}")
            counts = ", ".join(f"{rule} x{count}" for rule, count
                               in sorted(report.by_rule().items()))
            print(f"{label}: {module.name}: "
                  f"{len(report.findings)} finding(s) ({counts})")
    return 0 if report.clean else 1


def _run_analyze(args: argparse.Namespace, label: str) -> int:
    from .analysis import analysis_document

    module = _load_lintable_module(args, label)
    if module is None:
        return 2
    goals = None
    if args.workload:
        # A bundled workload carries its bug report, so the document can
        # include the goal-directed sections (may-reach closure + the
        # necessary-precondition tables the executor prunes with).
        from .core import GoalError, extract_goal
        from .workloads import get

        try:
            goal = extract_goal(module, get(args.workload).make_report())
        except GoalError:
            pass  # e.g. a patch moved the faulting instruction
        else:
            goals = {goal.description or args.workload: goal.targets}
    document = analysis_document(module, goals=goals)
    payload = json.dumps(document, indent=2)
    if args.output and args.output != "-":
        try:
            Path(args.output).write_text(payload + "\n")
        except OSError as exc:
            print(f"{label}: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
        absint = document["absint"]
        concurrency = document["concurrency"]
        goal_note = (f", {len(document['goals'])} goal section(s)"
                     if "goals" in document else "")
        print(f"{label}: {module.name}: {len(document['functions'])} "
              f"function(s), {len(absint['branch_facts'])} folded branch(es), "
              f"{len(concurrency['order_edges'])} lock-order edge(s)"
              f"{goal_note}; wrote {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


def _run_bench(args: argparse.Namespace, label: str) -> int:
    from .core import esd_synthesize
    from .workloads import ALL, get

    if args.workload not in ALL:
        print(f"{label}: unknown workload {args.workload!r}; "
              f"available: {', '.join(sorted(ALL))}", file=sys.stderr)
        return 2
    workload = get(args.workload)
    module = workload.compile()
    reports = [workload.make_report() for _ in range(args.reports)]
    config = ESDConfig()
    config.budget.max_seconds = args.max_seconds

    cold_started = time.perf_counter()
    cold = [esd_synthesize(module, r, config) for r in reports]
    cold_wall = time.perf_counter() - cold_started
    cold_static = sum(r.static_seconds for r in cold)

    session = ReproSession(module, config=config)
    warm_started = time.perf_counter()
    batch = session.synthesize_batch(reports)
    warm_wall = time.perf_counter() - warm_started
    warm_static = batch.static_seconds
    ok = all(r.found for r in batch) and all(r.found for r in cold)

    def finish(exit_code: int) -> int:
        """Common tail: append to / gate against the benchmark history."""
        if not getattr(args, "history", None):
            return exit_code
        from .obs.history import append_entry, compare_latest, render_compare

        path = append_entry(args.history, f"bench_{workload.name}", {
            "workload": workload.name,
            "reports": args.reports,
            "all_found": ok,
            "one_shot": {"static_seconds": cold_static,
                         "wall_seconds": cold_wall},
            "session": {"static_seconds": warm_static,
                        "wall_seconds": warm_wall},
        })
        print(f"{label}: bench history appended to {path}", file=sys.stderr)
        if getattr(args, "compare", False):
            report = compare_latest(path, max_ratio=args.max_regression)
            print(render_compare(report), file=sys.stderr)
            if not report["passed"]:
                return 1
        return exit_code

    if getattr(args, "json", False):
        # All counters read through one unified-registry snapshot (the
        # ``esd-metrics-v1`` schema every bench tool emits); the legacy
        # ``solver`` block is derived from the same snapshot.
        from .obs import unified_registry

        registry = unified_registry(solver=session.solver,
                                    statics=session.statics)
        snap = registry.snapshot(meta={"tool": "repro bench",
                                       "workload": workload.name})
        metrics = snap["metrics"]

        def counter(name: str):
            return metrics.get(name, {}).get("value", 0)

        print(json.dumps({
            "workload": workload.name,
            "reports": args.reports,
            "all_found": ok,
            "one_shot": {"static_seconds": cold_static,
                         "wall_seconds": cold_wall},
            "session": {"static_seconds": warm_static,
                        "wall_seconds": warm_wall,
                        "distance_builds": counter(
                            "esd_static_distance_builds_total"),
                        "cache_hits": counter(
                            "esd_static_cache_hits_total")},
            "amortization": (cold_static / warm_static
                             if warm_static > 0 else None),
            "solver": {
                "queries": counter("esd_solver_queries_total"),
                "cache_hits": counter("esd_solver_cache_hits_total"),
                "exact_hits": counter("esd_solver_cache_exact_hits_total"),
                "unsat_superset_hits": counter(
                    "esd_solver_cache_unsat_superset_hits_total"),
                "sat_subset_hits": counter(
                    "esd_solver_cache_sat_subset_hits_total"),
                "unknown_hits": counter(
                    "esd_solver_cache_unknown_hits_total"),
                "search_nodes": counter("esd_solver_search_nodes_total"),
                "fastpath_hits": counter("esd_solver_fastpath_hits_total"),
                "fastpath_misses": counter(
                    "esd_solver_fastpath_misses_total"),
            },
            "metrics": snap,
        }, indent=2))
        return finish(0 if ok else 1)

    print(f"{label}: workload {workload.name}, {args.reports} reports")
    print(f"{label}: one-shot API: static {cold_static*1000:8.2f}ms total "
          f"({cold_wall*1000:.2f}ms wall)")
    print(f"{label}: session API:  static {warm_static*1000:8.2f}ms total "
          f"({warm_wall*1000:.2f}ms wall, "
          f"{session.static_stats.distance_builds} distance build, "
          f"{session.static_stats.cache_hits} cache hits)")
    if warm_static > 0:
        print(f"{label}: static-phase amortization: "
              f"{cold_static / warm_static:.1f}x")
    sstats = session.solver_stats
    cstats = session.solver_cache_stats
    fast_total = sstats.fastpath_hits + sstats.fastpath_misses
    print(f"{label}: solver: {sstats.queries} queries, "
          f"{sstats.cache_hits} cache hits "
          f"({cstats.exact_hits} exact, "
          f"{cstats.unsat_superset_hits} unsat-superset, "
          f"{cstats.sat_subset_hits} sat-subset, "
          f"{cstats.unknown_hits} unknown), "
          f"{sstats.search_nodes} search nodes")
    if fast_total:
        print(f"{label}: model-reuse fast path: {sstats.fastpath_hits}/"
              f"{fast_total} branch queries "
              f"({100.0 * sstats.fastpath_hits / fast_total:.1f}% hit)")
    return finish(0 if ok else 1)


# ---------------------------------------------------------------------------
# Job-service subcommands (repro serve | submit | status | fetch)
# ---------------------------------------------------------------------------


def _service_url(args: argparse.Namespace) -> str:
    import os

    from .service.client import DEFAULT_URL

    return (getattr(args, "url", None)
            or os.environ.get("REPRO_SERVICE_URL")
            or DEFAULT_URL)


def _run_serve(args: argparse.Namespace, label: str) -> int:
    import signal

    from .service import ReproService
    from .service.daemon import ServiceDaemon
    from .store import ArtifactStore, StoreError

    try:
        store = ArtifactStore(args.store)
    except StoreError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    service = ReproService(store=store, max_workers=args.max_workers,
                           trace_jobs=args.trace,
                           record_flight=args.flight)
    try:
        daemon = ServiceDaemon(service, host=args.host, port=args.port,
                               spool_dir=args.spool, verbose=args.verbose)
    except OSError as exc:
        print(f"{label}: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1

    def on_signal(signum, frame):  # noqa: ARG001 -- signal API
        daemon.request_stop()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    if service.stats.recovered:
        print(f"{label}: recovered {service.stats.recovered} queued "
              f"job(s) from {args.store}", file=sys.stderr)
    print(f"{label}: listening on {daemon.url} "
          f"(store {args.store}, {args.max_workers} worker(s)"
          + (f", spool {args.spool}" if args.spool else "") + ")",
          file=sys.stderr, flush=True)
    daemon.run()
    stats = service.stats
    print(f"{label}: drained; {stats.completed} completed, "
          f"{stats.interrupted} checkpointed as resumable, "
          f"{stats.cancelled} cancelled", file=sys.stderr)
    return 0


def _run_submit(args: argparse.Namespace, label: str) -> int:
    from .api.jobs import JobSpec, SpecError
    from .service.client import ServiceClient, ServiceClientError

    kind = "repair" if getattr(args, "repair", False) else "synth"
    try:
        if args.workload:
            if args.coredump or args.program:
                print(f"{label}: give either --workload or "
                      f"coredump+program, not both", file=sys.stderr)
                return 2
            if getattr(args, "bug_type", None):
                # The report is generated server-side for workload jobs;
                # silently dropping the override would search a different
                # goal than asked for.
                print(f"{label}: --bug-type needs an explicit coredump "
                      f"(workload jobs use the workload's bug type)",
                      file=sys.stderr)
                return 2
            spec = JobSpec(workload=args.workload,
                           config=_make_config(args),
                           priority=args.priority,
                           kind=kind)
        else:
            if not (args.coredump and args.program):
                print(f"{label}: need a coredump and a program "
                      f"(or --workload NAME)", file=sys.stderr)
                return 2
            report = _load_report(args.coredump)
            if getattr(args, "bug_type", None):
                report.bug_type = args.bug_type
            spec = JobSpec(
                report=report,
                source=Path(args.program).read_text(),
                program_name=Path(args.program).stem,
                lang=_program_lang(args.program, getattr(args, "lang", None)),
                config=_make_config(args),
                priority=args.priority,
                kind=kind,
            )
        spec.validate()
    except (SpecError, *_INPUT_ERRORS) as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    client = ServiceClient(_service_url(args))
    try:
        record = client.submit(spec)
        if args.wait:
            record = client.wait(record["job_id"], timeout=args.timeout)
    except ServiceClientError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(f"{label}: job {record['job_id']} {record['state']}"
              + (" (deduplicated)" if record.get("deduped") else ""))
    if args.wait:
        return 0 if record.get("state") == "FOUND" else 1
    return 0


def _run_status(args: argparse.Namespace, label: str) -> int:
    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(_service_url(args))
    try:
        if not args.job_id:
            jobs = client.jobs()
            if args.json:
                print(json.dumps(jobs, indent=2))
            else:
                for job in jobs:
                    print(f"{job['job_id']}  {job['state']:<10} "
                          f"prio {job['priority']:<3} "
                          f"{job.get('reason') or ''}")
                if not jobs:
                    print(f"{label}: no jobs", file=sys.stderr)
            return 0
        record = client.job(args.job_id)
        if args.follow:
            for event, data in client.stream(args.job_id, since=args.since):
                if args.json:
                    print(json.dumps({"event": event, "data": data}),
                          flush=True)
                elif event == "done":
                    print(f"{label}: job {data['job_id']}: {data['state']}"
                          + (f" ({data['reason']})" if data.get("reason")
                             else ""))
                else:
                    print(f"#{data.get('seq', 0):<4} {event:<9} "
                          f"{data.get('state') or '':<10} "
                          f"{data.get('detail') or ''}", flush=True)
            return 0
        if args.events:
            events = client.events(args.job_id, since=args.since)
            if args.json:
                print(json.dumps(events, indent=2))
            else:
                for event in events:
                    print(f"#{event['seq']:<4} {event['kind']:<9} "
                          f"{event.get('state') or '':<10} "
                          f"{event.get('detail') or ''}")
            return 0
        if args.json:
            print(json.dumps(record, indent=2))
        else:
            print(f"{label}: job {record['job_id']}: {record['state']}"
                  + (f" ({record['reason']})" if record.get("reason")
                     else ""))
            for kind, digest in record.get("artifacts", {}).items():
                print(f"{label}:   artifact {kind}: {digest}")
        return 0
    except ServiceClientError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1


def _run_fetch(args: argparse.Namespace, label: str) -> int:
    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(_service_url(args))
    try:
        if args.wait:
            client.wait(args.job_id, timeout=args.timeout)
        data = client.fetch_job_artifact(args.job_id, kind=args.kind)
    except ServiceClientError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    try:
        Path(args.output).write_bytes(data)
    except OSError as exc:
        print(f"{label}: cannot write {args.output}: {exc}", file=sys.stderr)
        return 1
    print(f"{label}: wrote {args.output} ({len(data)} bytes)")
    return 0


def _run_stats(args: argparse.Namespace, label: str) -> int:
    """``repro stats``: the live service's unified metrics snapshot."""
    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(_service_url(args))
    try:
        if args.prometheus:
            sys.stdout.write(client.metrics_text())
            return 0
        snapshot = client.metrics()
    except ServiceClientError as exc:
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    for name, entry in snapshot["metrics"].items():
        if entry["type"] == "histogram":
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            print(f"{name:<44} count={entry['count']} "
                  f"sum={entry['sum']:.3f}s mean={mean:.4f}s")
        else:
            value = entry["value"]
            shown = (f"{value:.4f}" if isinstance(value, float)
                     and value != int(value) else f"{int(value)}")
            print(f"{name:<44} {shown}")
    return 0


def _run_trace(args: argparse.Namespace, label: str) -> int:
    """``repro trace``: summarize (and convert) an esd-trace-v1 file."""
    from .obs import chrome_trace, load_trace, phase_summary

    try:
        document = load_trace(args.trace_file)
    except (SchemaVersionError, *_INPUT_ERRORS) as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    if args.chrome:
        try:
            Path(args.chrome).write_text(
                json.dumps(chrome_trace(document)) + "\n"
            )
        except OSError as exc:
            print(f"{label}: cannot write {args.chrome}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{label}: wrote Chrome trace-event JSON to {args.chrome} "
              f"(open in Perfetto / chrome://tracing)", file=sys.stderr)
    summary = phase_summary(document)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"{label}: {summary['spans']} span(s), {summary['jobs']} job(s), "
          f"{summary['total_seconds']:.3f}s total"
          + (f", {summary['dropped']} dropped" if summary["dropped"] else ""))
    total = summary["total_seconds"] or 1.0
    for phase, seconds in sorted(summary["phase_seconds"].items(),
                                 key=lambda kv: -kv[1]):
        print(f"{label}:   {phase:<10} {seconds:8.3f}s "
              f"({100.0 * seconds / total:5.1f}%)")
    print(f"{label}: phase coverage {100.0 * summary['coverage']:.1f}% "
          f"of job wall-clock")
    return 0


def _run_explain(args: argparse.Namespace, label: str) -> int:
    """``repro explain``: decision chain and budget attribution from an
    esd-searchlog-v1 flight log (or the ranked diff of two)."""
    from .obs import (
        diff_flights,
        explain_flight,
        load_flight,
        render_diff,
        render_explain,
    )

    try:
        document = load_flight(args.flight_file)
        other = load_flight(args.diff) if args.diff else None
    except (SchemaVersionError, *_INPUT_ERRORS) as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1
    if other is not None:
        report = diff_flights(document, other)
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_diff(report))
        return 0
    report = explain_flight(document)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_explain(report))
    return 0


def _corpus_programs(args: argparse.Namespace):
    """The corpus bases: the bundled fixed Python programs, or one source
    file given with ``--program``."""
    from .corpus import CorpusProgram, default_programs

    if getattr(args, "program", None):
        path = args.program
        return [CorpusProgram(
            name=Path(path).stem,
            source=Path(path).read_text(),
            lang=_program_lang(path, getattr(args, "lang", None)),
        )]
    return default_programs()


def _print_corpus_rates(doc: dict, label: str) -> None:
    header = (f"{'class':<12} {'sel':>4} {'man':>4} {'repro':>6} "
              f"{'top3':>6} {'repair':>7}")
    print(f"{label}: {header}")
    rows = list(doc.get("classes", {}).items()) + [("TOTAL", doc["totals"])]
    for cls, row in rows:
        print(f"{label}: {cls:<12} {row.get('selected', 0):>4} "
              f"{row['manifested']:>4} {row['repro_rate']:>6.2f} "
              f"{row['top3_rate']:>6.2f} {row['repair_rate']:>7.2f}")


def _run_corpus_cmd(args: argparse.Namespace, label: str) -> int:
    """``repro corpus generate|run|report``: the mutation bug corpus."""
    from .corpus import run_corpus, select_mutations

    if args.mode == "report":
        try:
            doc = json.loads(Path(args.input).read_text())
            if doc.get("schema") != "esd-corpus-v1":
                raise ValueError(
                    f"not an esd-corpus-v1 document "
                    f"(schema {doc.get('schema')!r})"
                )
        except _INPUT_ERRORS as exc:
            print(f"{label}: {_describe(exc)}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(
                {"schema": doc["schema"], "seed": doc["seed"],
                 "classes": doc.get("classes", {}), "totals": doc["totals"]},
                indent=2, sort_keys=True))
        else:
            print(f"{label}: seed {doc['seed']}, "
                  f"{doc['totals']['selected']} mutant(s) over "
                  f"{len(doc.get('programs', []))} program(s)")
            _print_corpus_rates(doc, label)
        return 0

    try:
        programs = _corpus_programs(args)
    except _INPUT_ERRORS as exc:
        print(f"{label}: {_describe(exc)}", file=sys.stderr)
        return 1

    if args.mode == "generate":
        # Enumerate and select, but run nothing: the mutant list itself.
        share = args.count // len(programs)
        extra = args.count % len(programs)
        payload = []
        for position, program in enumerate(programs):
            try:
                module = program.compile()
            except _INPUT_ERRORS as exc:
                print(f"{label}: {program.name}: {_describe(exc)}",
                      file=sys.stderr)
                return 1
            want = share + (1 if position < extra else 0)
            selection, total = select_mutations(
                module, args.seed + position, want)
            payload.append({
                "program": program.name,
                "lang": program.lang,
                "sites_total": total,
                "mutations": [m.to_dict() for m in selection],
            })
        blob = json.dumps(
            {"schema": "esd-corpus-mutations-v1", "seed": args.seed,
             "programs": payload},
            indent=2, sort_keys=True)
        if args.output and args.output != "-":
            Path(args.output).write_text(blob + "\n")
            print(f"{label}: wrote "
                  f"{sum(len(p['mutations']) for p in payload)} mutation(s) "
                  f"to {args.output}", file=sys.stderr)
        else:
            print(blob)
        return 0

    # mode == "run": the full pipeline.
    def on_progress(name, index, total, outcome):
        if args.progress:
            print(f"{label}: {name} {index}/{total} "
                  f"{outcome.mutation.kind} -> {outcome.status}",
                  file=sys.stderr)

    doc = run_corpus(
        seed=args.seed, count=args.count, programs=programs,
        repair_every=args.repair_every, on_progress=on_progress,
    )
    blob = json.dumps(doc, indent=2, sort_keys=True)
    if args.output and args.output != "-":
        try:
            Path(args.output).write_text(blob + "\n")
        except OSError as exc:
            print(f"{label}: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{label}: wrote {args.output}", file=sys.stderr)
    if args.json:
        print(blob)
    else:
        _print_corpus_rates(doc, label)
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _add_lang_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lang", choices=("esd", "python"), default=None,
        help="program language (default: by extension -- .py is Python, "
             "anything else MiniC)",
    )


def _add_search_flags(parser: argparse.ArgumentParser) -> None:
    """The flags _make_config reads, shared by synth and triage.

    Budget flags default to None so only user-set values override
    :class:`ESDConfig`'s defaults (180s / 20M instructions)."""
    parser.add_argument("--max-seconds", type=float, default=None)
    parser.add_argument("--max-instructions", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--strategy", default="esd", metavar="NAME",
        help=f"search strategy ({', '.join(available_searchers())})",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the path search across N worker processes "
             "(default: serial, or the REPRO_WORKERS environment variable)",
    )


def _add_synth_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("coredump", help="bug report JSON (BugReport.to_dict)")
    parser.add_argument("program", help="MiniC or Python (.py) source file")
    _add_lang_flag(parser)
    kind = parser.add_mutually_exclusive_group()
    kind.add_argument("--crash", action="store_const", const="crash", dest="bug_type")
    kind.add_argument(
        "--deadlock", action="store_const", const="deadlock", dest="bug_type"
    )
    kind.add_argument("--race", action="store_const", const="race", dest="bug_type")
    parser.add_argument(
        "--with-race-det", action="store_true",
        help="enable data-race detection during path synthesis",
    )
    parser.add_argument("-o", "--output", default="execution.json")
    _add_search_flags(parser)
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write periodic frontier checkpoints to PATH "
             "(continue a killed run with `repro resume PATH`)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=5.0, metavar="SECONDS",
        help="seconds between frontier checkpoints (default: 5)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print structured progress events to stderr",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a hierarchical span trace (esd-trace-v1 JSON) of the "
             "synthesis to PATH; inspect with `repro trace PATH`",
    )
    parser.add_argument(
        "--flight", default=None, metavar="PATH",
        help="record the search flight log (esd-searchlog-v1 JSON) to "
             "PATH; inspect with `repro explain PATH`",
    )


def _add_play_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="MiniC or Python (.py) source file")
    _add_lang_flag(parser)
    parser.add_argument("execution", help="execution file written by repro synth")
    parser.add_argument(
        "--mode", choices=("strict", "happens-before"), default="strict"
    )
    parser.add_argument(
        "--coverage", nargs="?", const="-", default=None, metavar="PATH",
        help="replay through the stepper and emit per-function/per-line "
             "hit counts as JSON (to PATH, or stdout when omitted)",
    )


def repro_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Execution synthesis: reproduce, replay, and triage bugs "
                    "from coredumps alone.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser(
        "synth", help="synthesize an execution that reproduces a reported bug"
    )
    _add_synth_args(synth)

    resume = sub.add_parser(
        "resume",
        help="continue a checkpointed synthesis (see `repro synth --checkpoint`)",
    )
    resume.add_argument("checkpoint_file",
                        help="checkpoint written by `repro synth --checkpoint`")
    resume.add_argument("-o", "--output", default="execution.json")
    resume.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker count (default: the checkpointed value)")
    resume.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="keep checkpointing to PATH "
                             "(default: the resumed file itself)")
    resume.add_argument("--checkpoint-interval", type=float, default=5.0,
                        metavar="SECONDS")
    resume.add_argument("--max-seconds", type=float, default=None,
                        help="fresh wall-clock budget for the resumed leg")
    resume.add_argument("--max-instructions", type=int, default=None,
                        help="fresh instruction budget for the resumed leg")
    resume.add_argument("--progress", action="store_true")

    play = sub.add_parser(
        "play", help="deterministically play back a synthesized execution"
    )
    _add_play_args(play)

    repair = sub.add_parser(
        "repair",
        help="localize the fault and synthesize a validated patch",
    )
    repair.add_argument("coredump", help="bug report JSON (BugReport.to_dict)")
    repair.add_argument("program", help="MiniC or Python (.py) source file")
    _add_lang_flag(repair)
    repair_kind = repair.add_mutually_exclusive_group()
    repair_kind.add_argument("--crash", action="store_const", const="crash",
                             dest="bug_type")
    repair_kind.add_argument("--deadlock", action="store_const",
                             const="deadlock", dest="bug_type")
    repair_kind.add_argument("--race", action="store_const", const="race",
                             dest="bug_type")
    repair.add_argument("-o", "--output", default="patch.json",
                        help="where to write the validated patch JSON")
    repair.add_argument("--passing", type=int, default=4, metavar="N",
                        help="passing executions to synthesize for the "
                             "coverage spectra (default: 4)")
    repair.add_argument("--suspects", type=int, default=5, metavar="K",
                        help="ranked suspects to attempt patches at "
                             "(default: 5)")
    repair.add_argument("--formula", choices=("ochiai", "tarantula"),
                        default="ochiai",
                        help="suspiciousness formula (default: ochiai)")
    repair.add_argument("--json", action="store_true",
                        help="machine-readable result on stdout")
    repair.add_argument("--progress", action="store_true",
                        help="print structured progress events to stderr")
    _add_search_flags(repair)

    lint = sub.add_parser(
        "lint",
        help="statically lint a program's IR (bug smells + hygiene)",
    )
    lint.add_argument("program", nargs="?", default=None,
                      help="MiniC or Python (.py) source file "
                           "(omit with --workload)")
    _add_lang_flag(lint)
    lint.add_argument("--workload", default=None, metavar="NAME",
                      help="lint a bundled workload instead of a file")
    lint.add_argument("--patch", default=None, metavar="PATCH_JSON",
                      help="apply a stored esd-patch-v1 document before "
                           "linting (CI checks patched variants stay clean)")
    lint.add_argument("-o", "--output", default=None, metavar="PATH",
                      help="also write the esd-lint-v1 JSON report to PATH")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="format",
                      help="stdout format: human text (default) or the "
                           "esd-lint-v1 JSON document")
    lint.add_argument("--json", action="store_true",
                      help="alias for --format json")

    analyze = sub.add_parser(
        "analyze",
        help="dump the whole-module static analysis as esd-analysis-v1 JSON",
    )
    analyze.add_argument("program", nargs="?", default=None,
                         help="MiniC or Python (.py) source file "
                              "(omit with --workload)")
    _add_lang_flag(analyze)
    analyze.add_argument("--workload", default=None, metavar="NAME",
                         help="analyze a bundled workload instead of a file")
    analyze.add_argument("--patch", default=None, metavar="PATCH_JSON",
                         help="apply a stored esd-patch-v1 document first")
    analyze.add_argument("-o", "--output", default=None, metavar="PATH",
                         help="write the JSON document to PATH "
                              "(default: stdout)")

    triage = sub.add_parser(
        "triage", help="synthesize a stream of reports and deduplicate them"
    )
    triage.add_argument("program", help="MiniC or Python (.py) source file")
    _add_lang_flag(triage)
    triage.add_argument("coredumps", nargs="+",
                        help="bug report JSON files, one per incoming report")
    _add_search_flags(triage)
    triage.add_argument("--bug-type", default=None, dest="bug_type",
                        choices=("crash", "deadlock", "race"),
                        help="override every report's bug type")
    triage.add_argument("--db", default=None, metavar="PATH",
                        help="persistent triage database (JSON); loaded if "
                             "present, saved after the run, so dedup "
                             "accumulates across invocations")
    triage.add_argument("--json", action="store_true",
                        help="machine-readable results on stdout")

    bench = sub.add_parser(
        "bench", help="measure session-API static-phase amortization"
    )
    bench.add_argument("--workload", default="ls1",
                       help="bundled workload name (default: ls1)")
    bench.add_argument("--reports", type=int, default=4)
    bench.add_argument("--max-seconds", type=float, default=120.0)
    bench.add_argument("--json", action="store_true",
                       help="machine-readable results on stdout")
    bench.add_argument("--history", default=None, metavar="DIR",
                       help="append this run to the benchmark history in "
                            "DIR (esd-benchhistory-v1 JSONL, per host)")
    bench.add_argument("--compare", action="store_true",
                       help="with --history: gate this run against the "
                            "previous entry, exit 1 on regression")
    bench.add_argument("--max-regression", type=float, default=1.5,
                       metavar="RATIO",
                       help="latest/baseline ratio that fails --compare "
                            "(default: 1.5)")

    serve = sub.add_parser(
        "serve", help="run the job-service daemon (HTTP + artifact store)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377)
    serve.add_argument("--store", default="repro-store", metavar="DIR",
                       help="artifact-store directory (default: repro-store)")
    serve.add_argument("--max-workers", type=int, default=2, metavar="N",
                       help="concurrent synthesis jobs (default: 2)")
    serve.add_argument("--spool", default=None, metavar="DIR",
                       help="also watch DIR for *.json job-spec files")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.add_argument("--trace", action="store_true",
                       help="record a span trace per job (fetched with "
                            "`repro fetch --kind trace`)")
    serve.add_argument("--flight", action="store_true",
                       help="record a search flight log per job (fetched "
                            "with `repro fetch --kind flight`, read with "
                            "`repro explain`)")

    submit = sub.add_parser(
        "submit", help="submit a synthesis job to a running `repro serve`"
    )
    submit.add_argument("coredump", nargs="?", default=None,
                        help="bug report JSON (omit with --workload)")
    submit.add_argument("program", nargs="?", default=None,
                        help="MiniC or Python (.py) source file "
                             "(omit with --workload)")
    _add_lang_flag(submit)
    submit.add_argument("--workload", default=None, metavar="NAME",
                        help="submit a bundled workload instead of files")
    submit.add_argument("--bug-type", default=None, dest="bug_type",
                        choices=("crash", "deadlock", "race"))
    submit.add_argument("--repair", action="store_true", dest="repair",
                        help="queue the automated-repair pipeline instead "
                             "of plain synthesis (patch lands in the store)")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs sooner (default: 0)")
    submit.add_argument("--url", default=None,
                        help="service URL (default: $REPRO_SERVICE_URL or "
                             "http://127.0.0.1:8377)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up waiting after SECONDS")
    submit.add_argument("--json", action="store_true")
    _add_search_flags(submit)

    status = sub.add_parser(
        "status", help="job status (or the whole job list) from the daemon"
    )
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--url", default=None)
    status.add_argument("--events", action="store_true",
                        help="print the job's lifecycle/progress events")
    status.add_argument("--follow", action="store_true",
                        help="stream events live (server-sent events) "
                             "until the job is terminal")
    status.add_argument("--since", type=int, default=0,
                        help="only events after this sequence number")
    status.add_argument("--json", action="store_true")

    fetch = sub.add_parser(
        "fetch", help="download a job's artifact from the daemon"
    )
    fetch.add_argument("job_id")
    fetch.add_argument("-o", "--output", default="execution.json")
    fetch.add_argument("--kind", default="execution",
                       choices=("execution", "checkpoint", "spec", "patch",
                                "trace", "flight"))
    fetch.add_argument("--url", default=None)
    fetch.add_argument("--wait", action="store_true",
                       help="wait for the job to finish first")
    fetch.add_argument("--timeout", type=float, default=None)

    stats = sub.add_parser(
        "stats", help="unified metrics snapshot from a running `repro serve`"
    )
    stats.add_argument("--url", default=None,
                       help="service URL (default: $REPRO_SERVICE_URL or "
                            "http://127.0.0.1:8377)")
    stats.add_argument("--prometheus", action="store_true",
                       help="print the raw /metrics text exposition")
    stats.add_argument("--json", action="store_true",
                       help="print the esd-metrics-v1 snapshot as JSON")

    corpus = sub.add_parser(
        "corpus",
        help="mutation-generated bug corpus: seed bugs into correct "
             "programs and measure the pipeline on them",
    )
    corpus.add_argument("mode", choices=("generate", "run", "report"),
                        help="generate: write the selected mutation list; "
                             "run: execute the full pipeline and write the "
                             "esd-corpus-v1 document; report: summarize an "
                             "existing document")
    corpus.add_argument("input", nargs="?", default="corpus.json",
                        help="esd-corpus-v1 document to summarize "
                             "(report mode only; default: corpus.json)")
    corpus.add_argument("--program", default=None, metavar="FILE",
                        help="mutate one source file instead of the "
                             "bundled fixed Python programs")
    _add_lang_flag(corpus)
    corpus.add_argument("--seed", type=int, default=0,
                        help="mutation-selection seed (default: 0)")
    corpus.add_argument("--count", type=int, default=100, metavar="N",
                        help="mutants to select across programs "
                             "(default: 100)")
    corpus.add_argument("--repair-every", type=int, default=5, metavar="K",
                        dest="repair_every",
                        help="run repair on every K-th manifested mutant "
                             "per program (1 = all, 0 = none; default: 5)")
    corpus.add_argument("-o", "--output", default="corpus.json",
                        help="where to write the document / mutation list "
                             "('-' for stdout; default: corpus.json)")
    corpus.add_argument("--json", action="store_true",
                        help="machine-readable document on stdout")
    corpus.add_argument("--progress", action="store_true",
                        help="print per-mutant progress to stderr")

    trace = sub.add_parser(
        "trace", help="summarize an esd-trace-v1 span trace file"
    )
    trace.add_argument("trace_file",
                       help="trace JSON written by `repro synth --trace` or "
                            "fetched with `repro fetch --kind trace`")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also convert to Chrome trace-event JSON "
                            "(Perfetto / chrome://tracing)")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable phase summary on stdout")

    explain = sub.add_parser(
        "explain",
        help="explain a search from its esd-searchlog-v1 flight log",
    )
    explain.add_argument("flight_file",
                         help="flight log written by `repro synth --flight` "
                              "or fetched with `repro fetch --kind flight`")
    explain.add_argument("--diff", default=None, metavar="OTHER",
                         help="compare against a second flight log and rank "
                              "what moved")
    explain.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout")

    args = parser.parse_args(argv)
    if args.command == "synth":
        return _run_synth(args, "repro synth")
    if args.command == "resume":
        return _run_resume(args, "repro resume")
    if args.command == "play":
        return _run_play(args, "repro play")
    if args.command == "repair":
        return _run_repair(args, "repro repair")
    if args.command == "lint":
        return _run_lint(args, "repro lint")
    if args.command == "analyze":
        return _run_analyze(args, "repro analyze")
    if args.command == "triage":
        return _run_triage(args, "repro triage")
    if args.command == "bench":
        return _run_bench(args, "repro bench")
    if args.command == "serve":
        return _run_serve(args, "repro serve")
    if args.command == "submit":
        return _run_submit(args, "repro submit")
    if args.command == "status":
        return _run_status(args, "repro status")
    if args.command == "fetch":
        return _run_fetch(args, "repro fetch")
    if args.command == "stats":
        return _run_stats(args, "repro stats")
    if args.command == "corpus":
        return _run_corpus_cmd(args, "repro corpus")
    if args.command == "trace":
        return _run_trace(args, "repro trace")
    if args.command == "explain":
        return _run_explain(args, "repro explain")
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


# ---------------------------------------------------------------------------
# Deprecated shims
# ---------------------------------------------------------------------------


def esdsynth_main(argv: list[str] | None = None) -> int:
    """Deprecated: use ``repro synth``."""
    parser = argparse.ArgumentParser(
        prog="esdsynth",
        description="[deprecated: use `repro synth`] Synthesize an execution "
                    "that reproduces a reported bug.",
    )
    _add_synth_args(parser)
    args = parser.parse_args(argv)
    print("esdsynth: deprecated, use `repro synth`", file=sys.stderr)
    return _run_synth(args, "esdsynth")


def esdplay_main(argv: list[str] | None = None) -> int:
    """Deprecated: use ``repro play``."""
    parser = argparse.ArgumentParser(
        prog="esdplay",
        description="[deprecated: use `repro play`] Deterministically play "
                    "back a synthesized execution.",
    )
    _add_play_args(parser)
    args = parser.parse_args(argv)
    print("esdplay: deprecated, use `repro play`", file=sys.stderr)
    return _run_play(args, "esdplay")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(repro_main())
