"""Command-line front ends (paper section 8's usage model).

::

    esdsynth <coredump.json> <program.minic> --deadlock [-o exec.json]
    esdplay  <program.minic> <exec.json> [--mode strict|happens-before]

The coredump file holds a serialized :class:`~repro.coredump.BugReport`
(``BugReport.to_dict``); the program is MiniC source; the execution file is
what ``esdsynth`` writes and ``esdplay`` (or the :class:`~repro.debugger.
Debugger`) consumes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .coredump import BugReport
from .core import ESDConfig, ExecutionFile, esd_synthesize
from .lang import compile_source
from .playback import play_back
from .search import SearchBudget


def esdsynth_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="esdsynth",
        description="Synthesize an execution that reproduces a reported bug.",
    )
    parser.add_argument("coredump", help="bug report JSON (BugReport.to_dict)")
    parser.add_argument("program", help="MiniC source file")
    kind = parser.add_mutually_exclusive_group()
    kind.add_argument("--crash", action="store_const", const="crash", dest="bug_type")
    kind.add_argument(
        "--deadlock", action="store_const", const="deadlock", dest="bug_type"
    )
    kind.add_argument("--race", action="store_const", const="race", dest="bug_type")
    parser.add_argument(
        "--with-race-det", action="store_true",
        help="enable data-race detection during path synthesis",
    )
    parser.add_argument("-o", "--output", default="execution.json")
    parser.add_argument("--max-seconds", type=float, default=180.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    report = BugReport.from_dict(json.loads(Path(args.coredump).read_text()))
    if args.bug_type:
        report.bug_type = args.bug_type
    module = compile_source(Path(args.program).read_text(), Path(args.program).stem)

    config = ESDConfig(
        budget=SearchBudget(max_seconds=args.max_seconds),
        seed=args.seed,
        with_race_detection=args.with_race_det,
    )
    result = esd_synthesize(module, report, config)
    if not result.found:
        print(f"esdsynth: no execution found ({result.reason}); "
              f"explored {result.instructions} instructions "
              f"in {result.total_seconds:.1f}s", file=sys.stderr)
        return 1
    assert result.execution_file is not None
    result.execution_file.save(args.output)
    print(f"esdsynth: synthesized execution for: {result.execution_file.bug_summary}")
    print(f"esdsynth: static phase {result.static_seconds:.2f}s, "
          f"search {result.search_seconds:.2f}s, "
          f"{result.instructions} instructions explored")
    print(f"esdsynth: wrote {args.output}")
    return 0


def esdplay_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="esdplay",
        description="Deterministically play back a synthesized execution.",
    )
    parser.add_argument("program", help="MiniC source file")
    parser.add_argument("execution", help="execution file written by esdsynth")
    parser.add_argument(
        "--mode", choices=("strict", "happens-before"), default="strict"
    )
    args = parser.parse_args(argv)

    module = compile_source(Path(args.program).read_text(), Path(args.program).stem)
    execution = ExecutionFile.load(args.execution)
    result = play_back(module, execution, mode=args.mode)
    if result.bug is not None:
        print(f"esdplay: reproduced {result.bug.summary()}")
    if result.output:
        print("esdplay: program output:")
        for line in result.output:
            print(f"  {line}")
    if not result.bug_reproduced:
        print("esdplay: execution did NOT reproduce the recorded bug",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(esdsynth_main())
