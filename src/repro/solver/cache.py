"""Klee-style counterexample cache keyed by structural constraint digests.

This is the solver acceleration layer (paper section 3.3 lineage: Klee's
counterexample cache).  Queries are *sets* of constraint digests
(:func:`~repro.solver.expr.struct_key`), so structurally identical queries
from different execution states, different :class:`~repro.api.ReproSession`
runs, or a rebuilt module all hit the same entries -- uid-based keys never
could.

Beyond exact lookups, the cache reasons about set containment the way Klee
does:

* **UNSAT superset**: a query that contains a known-UNSAT constraint set is
  itself UNSAT -- answered without solving.
* **SAT subset**: a query that is a subset of a known-SAT set is satisfied
  by the cached model.  The solver re-verifies the model by direct
  evaluation before trusting it, so on this path a digest collision costs
  one cheap evaluation.  Exact and UNSAT-superset answers trust the
  64-bit structural digests (collision-hardened against CPython's
  ``hash(-1) == hash(-2)`` quirk; a random collision is ~2**-64 per
  pair), as Klee's cache trusts its query hashes.
* **UNKNOWN**: budget-exhausting queries are remembered too (bounded,
  recency-evicted), so re-checking a hard query does not re-burn the full
  search budget -- but only for solvers with an equal-or-smaller budget
  than the one that gave up.

All stores are bounded LRUs so a long-lived service process stays flat in
memory; a single lock makes the cache safe to share across the portfolio
API's worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from .solver_types import Result, Solution

Key = frozenset  # frozenset[int] of struct_key digests


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one shared counterexample cache."""

    lookups: int = 0
    exact_hits: int = 0
    unsat_superset_hits: int = 0
    sat_subset_hits: int = 0
    unknown_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    # Entries accepted from another cache's delta (cross-worker sync).
    merged: int = 0

    @property
    def hits(self) -> int:
        return (self.exact_hits + self.unsat_superset_hits
                + self.sat_subset_hits + self.unknown_hits)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


# Hit kinds returned by :meth:`CounterexampleCache.lookup`.
EXACT = "exact"
UNSAT_SUPERSET = "unsat_superset"
SAT_SUBSET = "sat_subset"
UNKNOWN_HIT = "unknown"


class CounterexampleCache:
    """Bounded, thread-safe store of solved constraint sets.

    ``capacity`` bounds the SAT/UNSAT entry count, ``unknown_capacity`` the
    remembered budget-exhausted queries.  Subset/superset candidates are
    found through per-digest inverted indexes, so containment checks scan
    only entries sharing a digest with the query, not the whole cache.
    """

    def __init__(self, capacity: int = 8192, unknown_capacity: int = 512) -> None:
        if capacity < 1 or unknown_capacity < 1:
            raise ValueError("cache capacities must be positive")
        self.capacity = capacity
        self.unknown_capacity = unknown_capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Key, Solution]" = OrderedDict()
        # digest -> key-sets containing it, split by result so UNSAT-superset
        # and SAT-subset scans each touch only eligible entries.
        self._unsat_index: dict[int, list[Key]] = {}
        self._sat_index: dict[int, list[Key]] = {}
        # key -> max_nodes budget that was exhausted proving nothing.
        self._unknown: "OrderedDict[Key, int]" = OrderedDict()
        # When enabled, definite insertions are journaled here so a sharded-
        # search worker can ship its newly learned results to its siblings
        # (merged entries are not re-journaled -- see merge_delta).
        self._delta: Optional[list[tuple[tuple[int, ...], str, Optional[dict]]]] = None

    # -- lookup --------------------------------------------------------------

    def lookup(
        self, key: Key, max_nodes: int, subset_reasoning: bool = True
    ) -> Optional[tuple[str, Solution]]:
        """Find an answer for ``key`` without solving.

        Returns ``(kind, solution)`` or ``None``.  A ``SAT_SUBSET`` hit's
        model comes from a *superset* of the query, so it satisfies every
        query constraint by construction; the caller still re-verifies it
        against the actual expressions to make digest collisions harmless.
        The caller records the hit with :meth:`record_hit` only once it
        accepts it.
        """
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return EXACT, entry
            if subset_reasoning:
                # A known-UNSAT core contained in the query: every core
                # element is in the query, so the core shows up in the index
                # bucket of each of its digests -- scanning the query's
                # buckets finds it.  Scanned *before* the UNKNOWN store: a
                # definite refutation learned later must beat a remembered
                # give-up, or a provably infeasible path would stay
                # "possibly feasible" until the UNKNOWN entry ages out.
                for digest in key:
                    for stored in self._unsat_index.get(digest, ()):
                        if stored <= key:
                            return UNSAT_SUPERSET, Solution(Result.UNSAT)
                # A known-SAT superset of the query: it contains every query
                # digest, so any single query digest's bucket suffices.
                probe = next(iter(key), None)
                if probe is not None:
                    for stored in self._sat_index.get(probe, ()):
                        if key <= stored:
                            # The matched superset is doing the work: keep
                            # it recent, or a hot entry serving thousands
                            # of subset probes would age out as cold.
                            self._entries.move_to_end(stored)
                            return SAT_SUBSET, self._entries[stored]
            budget = self._unknown.get(key)
            if budget is not None and budget >= max_nodes:
                self._unknown.move_to_end(key)
                return UNKNOWN_HIT, Solution(Result.UNKNOWN)
        return None

    def record_hit(self, kind: str) -> None:
        with self._lock:
            if kind == EXACT:
                self.stats.exact_hits += 1
            elif kind == UNSAT_SUPERSET:
                self.stats.unsat_superset_hits += 1
            elif kind == SAT_SUBSET:
                self.stats.sat_subset_hits += 1
            elif kind == UNKNOWN_HIT:
                self.stats.unknown_hits += 1

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Key, solution: Solution) -> None:
        """Store a definite (SAT/UNSAT) result; evicts LRU beyond capacity."""
        if solution.result is Result.UNKNOWN:
            raise ValueError("use insert_unknown for budget-exhausted results")
        with self._lock:
            self._insert_locked(key, solution, journal=True)

    def _insert_locked(self, key: Key, solution: Solution, journal: bool) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        while len(self._entries) >= self.capacity:
            old_key, old = self._entries.popitem(last=False)
            self._unindex(old_key, old)
            self.stats.evictions += 1
        self._entries[key] = solution
        index = (self._sat_index if solution.result is Result.SAT
                 else self._unsat_index)
        for digest in key:
            index.setdefault(digest, []).append(key)
        self.stats.insertions += 1
        # A definite answer supersedes any remembered give-up.
        self._unknown.pop(key, None)
        if journal and self._delta is not None:
            self._delta.append((
                tuple(sorted(key)),
                solution.result.value,
                dict(solution.model) if solution.model else None,
            ))
        return True

    # -- cross-worker delta sync ---------------------------------------------
    #
    # Sharded exploration gives each worker process its own cache; results
    # learned in one shard are shipped to the others at steal/checkpoint
    # boundaries.  Deltas carry raw structural digests, which are stable
    # across fork()ed processes (same string-hash seed) -- the pool layer
    # only enables syncing under the fork start method.

    def enable_delta_log(self) -> None:
        """Start journaling definite insertions for :meth:`drain_delta`."""
        with self._lock:
            if self._delta is None:
                self._delta = []

    def drain_delta(self) -> list[tuple[tuple[int, ...], str, Optional[dict]]]:
        """Return and clear the journal of insertions since the last drain."""
        with self._lock:
            if not self._delta:
                return []
            drained, self._delta = self._delta, []
            return drained

    def merge_delta(
        self, entries: list[tuple[tuple[int, ...], str, Optional[dict]]]
    ) -> int:
        """Apply another cache's drained delta; returns entries accepted.

        Merged entries are *not* re-journaled into this cache's own delta:
        the pool routes every worker's delta to every sibling itself, and
        re-journaling would echo entries back and forth forever.
        """
        applied = 0
        with self._lock:
            for digests, result, model in entries:
                solution = Solution(Result(result), dict(model) if model else {})
                if self._insert_locked(frozenset(digests), solution, journal=False):
                    applied += 1
            self.stats.merged += applied
        return applied

    def insert_unknown(self, key: Key, max_nodes: int) -> None:
        """Remember that ``key`` exhausted a ``max_nodes`` search budget."""
        with self._lock:
            prior = self._unknown.get(key)
            if prior is not None:
                # In-place budget raise: no new slot needed, so evicting an
                # unrelated entry would just lose someone else's memo.
                if prior < max_nodes:
                    self._unknown[key] = max_nodes
                self._unknown.move_to_end(key)
                return
            while len(self._unknown) >= self.unknown_capacity:
                self._unknown.popitem(last=False)
                self.stats.evictions += 1
            self._unknown[key] = max_nodes

    def _unindex(self, key: Key, solution: Solution) -> None:
        index = (self._sat_index if solution.result is Result.SAT
                 else self._unsat_index)
        for digest in key:
            bucket = index.get(digest)
            if bucket is None:
                continue
            try:
                bucket.remove(key)
            except ValueError:
                pass
            if not bucket:
                del index[digest]

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._unsat_index.clear()
            self._sat_index.clear()
            self._unknown.clear()
