"""Symbolic expression DAG.

During symbolic execution (paper section 3.3), program inputs are
*unconstrained symbolic values*; operations on them build expressions, and
branch decisions accumulate constraints over those expressions.

Expressions here are hash-consed: structurally identical expressions are the
same Python object, so equality/hashing is identity, path conditions
deduplicate for free, and the solver cache can key on expression ids.  Smart
constructors constant-fold eagerly, so an expression containing no variables
is always reduced to a plain Python int before an :class:`Expr` is built.

Semantics are C-like signed 32-bit integers.  Comparison and logical
operators yield 0/1.  Division/modulo truncate toward zero (the executor
forks on a possibly-zero symbolic divisor before the expression is built).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Iterator, Optional, Union

from ..ir.values import wrap32

Atom = Union[int, "Expr"]

_COMMUTATIVE = frozenset({"+", "*", "&", "|", "^", "==", "!="})


def _c_div(a: int, b: int) -> int:
    """C division: truncation toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _c_mod(a: int, b: int) -> int:
    """C modulo: sign follows the dividend."""
    return a - _c_div(a, b) * b


_FOLDERS = {
    "+": lambda a, b: wrap32(a + b),
    "-": lambda a, b: wrap32(a - b),
    "*": lambda a, b: wrap32(a * b),
    "/": lambda a, b: wrap32(_c_div(a, b)),
    "%": lambda a, b: wrap32(_c_mod(a, b)),
    "&": lambda a, b: wrap32(a & b),
    "|": lambda a, b: wrap32(a | b),
    "^": lambda a, b: wrap32(a ^ b),
    "<<": lambda a, b: wrap32(a << (b & 31)),
    ">>": lambda a, b: wrap32(a >> (b & 31)),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}

_UNARY_FOLDERS = {
    "-": lambda a: wrap32(-a),
    "!": lambda a: int(not a),
    "~": lambda a: wrap32(~a),
}

_NEGATED_CMP = {
    "==": "!=", "!=": "==",
    "<": ">=", ">=": "<",
    ">": "<=", "<=": ">",
}


# uid allocation must be atomic: concurrent portfolio threads build
# expressions through the shared intern table, whose keys embed child uids
# -- a duplicated uid would silently alias two structurally different
# expressions.  ``next()`` on an itertools.count is a single C call.
_uid_counter = itertools.count(1)


class Expr:
    """Base class for symbolic expressions.  Instances are interned."""

    __slots__ = ("uid", "_vars", "_skey")

    def variables(self) -> frozenset["Var"]:
        return self._vars  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class Var(Expr):
    """A symbolic input with an inclusive integer domain ``[lo, hi]``.

    Domains come from the input's type: bytes of stdin/env/argv strings are
    ``[0, 255]``, generic int inputs get a configurable range.  Finite domains
    are what makes the solver complete over this constraint class (the
    analogue of the paper's "symbolic execution cannot invert SHA-2" limit).
    """

    __slots__ = ("name", "lo", "hi")

    def __init__(self, name: str, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty domain for {name}: [{lo}, {hi}]")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.uid = next(_uid_counter)
        self._vars = frozenset((self,))
        self._skey: Optional[int] = None

    def __repr__(self) -> str:
        return self.name


class BinExpr(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Atom, rhs: Atom) -> None:
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.uid = next(_uid_counter)
        vars_: frozenset[Var] = frozenset()
        if isinstance(lhs, Expr):
            vars_ |= lhs.variables()
        if isinstance(rhs, Expr):
            vars_ |= rhs.variables()
        self._vars = vars_
        self._skey: Optional[int] = None

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class UnExpr(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        self.op = op
        self.operand = operand
        self.uid = next(_uid_counter)
        self._vars = operand.variables()
        self._skey: Optional[int] = None

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


# Intern table: (op, lhs key, rhs key) -> Expr.  Var objects are unique by
# construction (fresh input names), so only compound nodes are interned.
# The table is a bounded LRU: a long-lived service process (batch/portfolio
# synthesis over many reports) builds expressions forever, and an unbounded
# table would pin every one of them.  Evicting an entry is always safe --
# a structurally identical expression built later just becomes a fresh
# object with a fresh uid, and the solver keys its caches on *structural*
# digests (:func:`struct_key`), not uids, so cache effectiveness survives
# eviction.
_INTERN_LIMIT = 1 << 17
_interned: "OrderedDict[tuple, Expr]" = OrderedDict()


def set_intern_limit(limit: int) -> None:
    """Bound the intern table to ``limit`` entries (evicts oldest now)."""
    global _INTERN_LIMIT
    if limit < 1:
        raise ValueError("intern limit must be positive")
    _INTERN_LIMIT = limit
    while len(_interned) > _INTERN_LIMIT:
        _interned.popitem(last=False)


def intern_table_size() -> int:
    return len(_interned)


def _key(atom: Atom) -> object:
    return atom.uid if isinstance(atom, Expr) else ("c", atom)


# CPython's hash(-1) == hash(-2), so hashing raw integers into a digest
# would make the constants -1 and -2 (or domain bounds differing the same
# way) collide *systematically* -- and a digest collision in the solver
# cache is a wrong SAT/UNSAT answer.  Shifting into the positive range
# [0, 2**61-1) keeps integer hashing injective for every value 32-bit
# program arithmetic can produce.
_HASH_SHIFT = 1 << 32


def _int_digest(value: int) -> int:
    return value + _HASH_SHIFT


def struct_key(atom: Atom) -> int:
    """A canonical structural digest of an expression (or constant).

    Structurally identical expressions -- even ones built by different
    sessions, from a recompiled module, or after intern-table eviction --
    get equal digests, so solver caches keyed on ``struct_key`` survive
    expression re-construction (uids do not).  Variables hash by
    ``(name, lo, hi)``: two symbolic inputs with the same name and domain
    denote the same value stream across runs of one program.

    Digests are memoized on the node; computation is iterative so deep
    path-condition expressions cannot overflow the recursion limit.
    """
    if not isinstance(atom, Expr):
        return hash(("c", _int_digest(atom)))
    cached = atom._skey
    if cached is not None:
        return cached
    stack = [atom]
    while stack:
        node = stack[-1]
        if node._skey is not None:
            stack.pop()
            continue
        if isinstance(node, Var):
            node._skey = hash(
                ("v", node.name, _int_digest(node.lo), _int_digest(node.hi))
            )
            stack.pop()
        elif isinstance(node, BinExpr):
            lhs, rhs = node.lhs, node.rhs
            if isinstance(lhs, Expr) and lhs._skey is None:
                stack.append(lhs)
                continue
            if isinstance(rhs, Expr) and rhs._skey is None:
                stack.append(rhs)
                continue
            lk = lhs._skey if isinstance(lhs, Expr) else hash(("c", _int_digest(lhs)))
            rk = rhs._skey if isinstance(rhs, Expr) else hash(("c", _int_digest(rhs)))
            node._skey = hash(("b", node.op, lk, rk))
            stack.pop()
        else:
            operand = node.operand  # type: ignore[attr-defined]
            if operand._skey is None:
                stack.append(operand)
                continue
            node._skey = hash(("u", node.op, operand._skey))
            stack.pop()
    return atom._skey  # type: ignore[return-value]


def make_var(name: str, lo: int = -(2**31), hi: int = 2**31 - 1) -> Var:
    return Var(name, lo, hi)


def binop(op: str, lhs: Atom, rhs: Atom) -> Atom:
    """Build ``lhs op rhs``, folding and simplifying."""
    if isinstance(lhs, int) and isinstance(rhs, int):
        return _FOLDERS[op](lhs, rhs)

    simplified = _simplify_binop(op, lhs, rhs)
    if simplified is not None:
        return simplified

    if op in _COMMUTATIVE and isinstance(lhs, int):
        lhs, rhs = rhs, lhs  # canonical form: constant on the right

    key = (op, _key(lhs), _key(rhs))
    cached = _interned.get(key)
    if cached is not None:
        _touch(key)
        return cached
    expr = BinExpr(op, lhs, rhs)
    _intern(key, expr)
    return expr


def unop(op: str, operand: Atom) -> Atom:
    if isinstance(operand, int):
        return _UNARY_FOLDERS[op](operand)
    if op == "-":
        return binop("-", 0, operand)
    if op == "!":
        # !(a cmp b) -> negated comparison; !!x stays as (x == 0) == 0 form.
        if isinstance(operand, BinExpr) and operand.op in _NEGATED_CMP:
            return binop(_NEGATED_CMP[operand.op], operand.lhs, operand.rhs)
        return binop("==", operand, 0)
    key = (op, _key(operand), None)
    cached = _interned.get(key)
    if cached is not None:
        _touch(key)
        return cached
    expr = UnExpr(op, operand)
    _intern(key, expr)
    return expr


def rebuild_binop(op: str, lhs: Atom, rhs: Atom) -> Expr:
    """Reconstruct a binary node *exactly*, without folding or simplifying.

    Snapshot deserialization rebuilds expression DAGs node for node; the
    encoded structure already went through :func:`binop`'s folding when it
    was first built, so re-simplifying could produce a structurally
    different (if equivalent) tree and break round-trip fidelity checks.
    The node is still interned, so decoded DAGs share subexpressions with
    live ones.
    """
    key = (op, _key(lhs), _key(rhs))
    cached = _interned.get(key)
    if isinstance(cached, BinExpr):
        _touch(key)
        return cached
    expr = BinExpr(op, lhs, rhs)
    _intern(key, expr)
    return expr


def rebuild_unop(op: str, operand: Expr) -> Expr:
    """Reconstruct a unary node exactly (see :func:`rebuild_binop`)."""
    key = (op, _key(operand), None)
    cached = _interned.get(key)
    if isinstance(cached, UnExpr):
        _touch(key)
        return cached
    expr = UnExpr(op, operand)
    _intern(key, expr)
    return expr


def _touch(key: tuple) -> None:
    # Lock-free recency bump: a concurrent portfolio thread may evict the
    # key between our get() and here; losing the bump for an entry that is
    # gone anyway is fine, raising out of binop() is not.
    try:
        _interned.move_to_end(key)
    except KeyError:
        pass


def _intern(key: tuple, expr: Expr) -> None:
    while len(_interned) >= _INTERN_LIMIT:
        try:
            _interned.popitem(last=False)
        except KeyError:  # another thread emptied it under us
            break
    _interned[key] = expr


def _simplify_binop(op: str, lhs: Atom, rhs: Atom) -> Optional[Atom]:
    """Local algebraic simplifications.  Returns None when nothing applies."""
    if op == "+":
        if rhs == 0:
            return lhs
        if lhs == 0:
            return rhs
    elif op == "-":
        if rhs == 0:
            return lhs
        if lhs is rhs:
            return 0
    elif op == "*":
        if rhs == 1:
            return lhs
        if lhs == 1:
            return rhs
        if rhs == 0 or lhs == 0:
            return 0
    elif op == "/":
        if rhs == 1:
            return lhs
    elif op in ("&&", "||"):
        lhs_known = lhs if isinstance(lhs, int) else None
        rhs_known = rhs if isinstance(rhs, int) else None
        if op == "&&":
            if lhs_known == 0 or rhs_known == 0:
                return 0
            if lhs_known is not None and lhs_known != 0:
                return truthy(rhs)
            if rhs_known is not None and rhs_known != 0:
                return truthy(lhs)
        else:
            if (lhs_known is not None and lhs_known != 0) or (
                rhs_known is not None and rhs_known != 0
            ):
                return 1
            if lhs_known == 0:
                return truthy(rhs)
            if rhs_known == 0:
                return truthy(lhs)
    elif op in ("==", "!=", "<=", ">="):
        if lhs is rhs and isinstance(lhs, Expr):
            return int(op in ("==", "<=", ">="))
    elif op in ("<", ">"):
        if lhs is rhs and isinstance(lhs, Expr):
            return 0
    return None


def truthy(atom: Atom) -> Atom:
    """Normalize to 0/1: ``atom != 0``."""
    if isinstance(atom, int):
        return int(atom != 0)
    if isinstance(atom, BinExpr) and atom.op in _NEGATED_CMP:
        return atom  # comparisons are already 0/1
    if isinstance(atom, BinExpr) and atom.op in ("&&", "||"):
        return atom
    if isinstance(atom, UnExpr) and atom.op == "!":
        return atom
    return binop("!=", atom, 0)


def negate(atom: Atom) -> Atom:
    """Logical negation: ``atom == 0``."""
    return unop("!", atom) if isinstance(atom, Expr) else int(not atom)


def evaluate(atom: Atom, model: dict[str, int]) -> int:
    """Evaluate under a complete assignment of the variables involved."""
    if isinstance(atom, int):
        return atom
    result = _eval_cache_walk(atom, model, {})
    return result


def _eval_cache_walk(expr: Expr, model: dict[str, int], cache: dict[int, int]) -> int:
    cached = cache.get(expr.uid)
    if cached is not None:
        return cached
    if isinstance(expr, Var):
        value = model[expr.name]
    elif isinstance(expr, BinExpr):
        lhs = (
            _eval_cache_walk(expr.lhs, model, cache)
            if isinstance(expr.lhs, Expr) else expr.lhs
        )
        rhs = (
            _eval_cache_walk(expr.rhs, model, cache)
            if isinstance(expr.rhs, Expr) else expr.rhs
        )
        if expr.op in ("/", "%") and rhs == 0:
            raise ZeroDivisionError("symbolic division by zero under model")
        value = _FOLDERS[expr.op](lhs, rhs)
    elif isinstance(expr, UnExpr):
        value = _UNARY_FOLDERS[expr.op](_eval_cache_walk(expr.operand, model, cache))
    else:  # pragma: no cover
        raise TypeError(f"unknown expression node {expr!r}")
    cache[expr.uid] = value
    return value


def holds_under(atoms: "list[Atom]", model: dict[str, int]) -> bool:
    """Do all ``atoms`` evaluate truthy under ``model``?

    Variables absent from the model default to their domain minimum (the
    same default the executor uses when concretizing).  One evaluation
    cache is shared across all atoms, so a path condition's common
    subexpressions are evaluated once.  Division by zero under the model
    counts as "does not hold" (the assignment is no witness).

    This is the solver's model-reuse fast path: most branch-feasibility
    queries during symbolic execution are answered by evaluating the
    state's last satisfying assignment instead of running a full interval
    search.
    """
    exprs: list[Expr] = []
    for atom in atoms:
        if isinstance(atom, int):
            if atom == 0:
                return False
        else:
            exprs.append(atom)
    if not exprs:
        return True
    missing = {
        var.name: var.lo
        for expr in exprs
        for var in expr.variables()
        if var.name not in model
    }
    full = {**model, **missing} if missing else model
    cache: dict[int, int] = {}
    try:
        return all(_eval_cache_walk(expr, full, cache) != 0 for expr in exprs)
    except ZeroDivisionError:
        return False


def walk(atom: Atom) -> Iterator[Expr]:
    """Yield every node of an expression once (post-order)."""
    if not isinstance(atom, Expr):
        return
    seen: set[int] = set()
    stack = [atom]
    while stack:
        node = stack.pop()
        if node.uid in seen:
            continue
        seen.add(node.uid)
        if isinstance(node, BinExpr):
            if isinstance(node.lhs, Expr):
                stack.append(node.lhs)
            if isinstance(node.rhs, Expr):
                stack.append(node.rhs)
        elif isinstance(node, UnExpr):
            stack.append(node.operand)
        yield node
