"""Result types shared by the solver and its counterexample cache.

Split out of :mod:`repro.solver.solver` so the cache layer can name
:class:`Solution` without a circular import; :mod:`repro.solver` re-exports
everything, so callers are unaffected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(slots=True)
class Solution:
    result: Result
    model: dict[str, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.result is Result.SAT

    @property
    def maybe_sat(self) -> bool:
        """True unless definitely unsatisfiable (UNKNOWN counts as maybe)."""
        return self.result is not Result.UNSAT
