"""Constraint solver: interval propagation + branch-and-prune search.

This is the stand-in for the STP solver Klee uses.  Constraints are symbolic
expressions required to be *truthy* (non-zero).  The solver:

1. folds away concrete constraints,
2. narrows variable domains by HC4-style forward/backward interval
   propagation until a fixpoint,
3. searches: enumerate small domains / bisect large ones, propagating after
   every decision, and
4. verifies every model by direct evaluation before reporting SAT (so a
   propagation bug can cost time but never soundness).

Results are cached by the constraint set's expression ids, mirroring Klee's
counterexample cache.  Because variable domains are finite, the search is
complete given enough budget; budget exhaustion reports UNKNOWN, which
callers treat as "possibly feasible" (search keeps going, never drops paths).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from . import intervals as iv
from .expr import Atom, BinExpr, Expr, UnExpr, Var, evaluate
from .intervals import Interval, IntervalEvaluator


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(slots=True)
class Solution:
    result: Result
    model: dict[str, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.result is Result.SAT

    @property
    def maybe_sat(self) -> bool:
        """True unless definitely unsatisfiable (UNKNOWN counts as maybe)."""
        return self.result is not Result.UNSAT


class _Conflict(Exception):
    """A domain became empty during propagation."""


class _BudgetExhausted(Exception):
    """The search budget ran out."""


_MIRROR = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}


@dataclass(slots=True)
class SolverStats:
    queries: int = 0
    cache_hits: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    search_nodes: int = 0


class Solver:
    """A reusable solver instance with a query cache.

    ``enumeration_limit`` bounds how many values of one variable are tried
    before bisection takes over; ``max_nodes`` bounds total search nodes per
    query.
    """

    def __init__(self, enumeration_limit: int = 1024, max_nodes: int = 200_000) -> None:
        self.enumeration_limit = enumeration_limit
        self.max_nodes = max_nodes
        self.stats = SolverStats()
        self._cache: dict[frozenset[int], Solution] = {}

    # -- public API -----------------------------------------------------------

    def check(self, constraints: Iterable[Atom]) -> Solution:
        """Decide satisfiability of the conjunction of ``constraints``.

        Constraints are first partitioned into *independent* groups (connected
        components of the shares-a-variable relation, Klee's independent-
        constraint optimization); each component is solved and cached
        separately.  Long path conditions over many unrelated inputs then
        cost one small solve for the component the newest constraint touches,
        with everything else answered from cache.
        """
        self.stats.queries += 1
        exprs: list[Expr] = []
        for atom in constraints:
            if isinstance(atom, int):
                if atom == 0:
                    return Solution(Result.UNSAT)
                continue
            exprs.append(atom)
        if not exprs:
            return Solution(Result.SAT)

        merged_model: dict[str, int] = {}
        worst = Result.SAT
        for component in _independent_components(exprs):
            solution = self._check_component(component)
            if solution.result is Result.UNSAT:
                self.stats.unsat += 1
                return Solution(Result.UNSAT)
            if solution.result is Result.UNKNOWN:
                worst = Result.UNKNOWN
            merged_model.update(solution.model)
        if worst is Result.SAT:
            self.stats.sat += 1
            return Solution(Result.SAT, merged_model)
        self.stats.unknown += 1
        return Solution(Result.UNKNOWN)

    def _check_component(self, exprs: list[Expr]) -> Solution:
        key = frozenset(e.uid for e in exprs)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        solution = self._solve(exprs)
        if solution.result is not Result.UNKNOWN:
            self._cache[key] = solution
        return solution

    def feasible(self, constraints: Iterable[Atom]) -> bool:
        """May these constraints hold?  UNKNOWN counts as feasible (sound for
        path search: we never drop a path we cannot refute)."""
        return self.check(constraints).maybe_sat

    def model(self, constraints: Iterable[Atom]) -> Optional[dict[str, int]]:
        solution = self.check(constraints)
        return dict(solution.model) if solution.is_sat else None

    # -- core ---------------------------------------------------------------

    def _solve(self, exprs: list[Expr]) -> Solution:
        domains: dict[str, Interval] = {}
        for expr in exprs:
            for var in expr.variables():
                domains.setdefault(var.name, Interval(var.lo, var.hi))
        self._budget = self.max_nodes
        try:
            model = self._search(exprs, domains)
        except _BudgetExhausted:
            return Solution(Result.UNKNOWN)
        if model is None:
            return Solution(Result.UNSAT)
        return Solution(Result.SAT, model)

    def _search(
        self, exprs: list[Expr], domains: dict[str, Interval]
    ) -> Optional[dict[str, int]]:
        self._budget -= 1
        self.stats.search_nodes += 1
        if self._budget <= 0:
            raise _BudgetExhausted
        try:
            domains = self._propagate(exprs, domains)
        except _Conflict:
            return None

        open_vars = [
            (len(interval), name)
            for name, interval in domains.items()
            if not interval.singleton
        ]
        if not open_vars:
            model = {name: interval.lo for name, interval in domains.items()}
            return model if self._verify(exprs, model) else None

        open_vars.sort()
        size, name = open_vars[0]
        interval = domains[name]
        if size <= self.enumeration_limit:
            for value in self._ordered_values(name, interval, exprs):
                child = dict(domains)
                child[name] = Interval(value, value)
                model = self._search(exprs, child)
                if model is not None:
                    return model
            return None
        mid = (interval.lo + interval.hi) // 2
        for half in (Interval(interval.lo, mid), Interval(mid + 1, interval.hi)):
            child = dict(domains)
            child[name] = half
            model = self._search(exprs, child)
            if model is not None:
                return model
        return None

    def _ordered_values(
        self, name: str, interval: Interval, exprs: list[Expr]
    ) -> Iterable[int]:
        """Try equality hints first, then sweep the domain in order."""
        hints: list[int] = []
        for expr in exprs:
            if (
                isinstance(expr, BinExpr)
                and expr.op == "=="
                and isinstance(expr.lhs, Var)
                and expr.lhs.name == name
                and isinstance(expr.rhs, int)
                and expr.rhs in interval
            ):
                hints.append(expr.rhs)
        seen = set(hints)
        yield from hints
        for value in range(interval.lo, interval.hi + 1):
            if value not in seen:
                yield value

    def _verify(self, exprs: list[Expr], model: dict[str, int]) -> bool:
        try:
            return all(evaluate(expr, model) != 0 for expr in exprs)
        except ZeroDivisionError:
            return False

    # -- propagation ------------------------------------------------------------

    def _propagate(
        self, exprs: list[Expr], domains: dict[str, Interval]
    ) -> dict[str, Interval]:
        domains = dict(domains)
        for _ in range(20):  # fixpoint almost always reached in 2-3 rounds
            self._changed = False
            evaluator = IntervalEvaluator(domains)
            for expr in exprs:
                result = evaluator.eval(expr)
                if result.singleton and result.lo == 0:
                    raise _Conflict
                self._narrow_truthy(expr, domains, evaluator)
            if not self._changed:
                break
        return domains

    def _update(self, var: Var, required: Interval, domains: dict[str, Interval]) -> None:
        current = domains.get(var.name, Interval(var.lo, var.hi))
        narrowed = current.intersect(required)
        if narrowed.empty:
            raise _Conflict
        if narrowed != current:
            domains[var.name] = narrowed
            self._changed = True

    def _narrow_truthy(
        self, atom: Atom, domains: dict[str, Interval], ev: IntervalEvaluator
    ) -> None:
        """Require ``atom != 0`` and push implied bounds down."""
        if isinstance(atom, int):
            if atom == 0:
                raise _Conflict
            return
        if isinstance(atom, Var):
            # v != 0: can only trim an endpoint.
            self._trim_value(atom, 0, domains)
            return
        if isinstance(atom, UnExpr) and atom.op == "!":
            self._narrow_falsy(atom.operand, domains, ev)
            return
        if isinstance(atom, BinExpr):
            if atom.op == "&&":
                self._narrow_truthy(atom.lhs, domains, ev)
                self._narrow_truthy(atom.rhs, domains, ev)
                return
            if atom.op == "||":
                lhs_iv = ev.eval(atom.lhs)
                rhs_iv = ev.eval(atom.rhs)
                if lhs_iv.singleton and lhs_iv.lo == 0:
                    self._narrow_truthy(atom.rhs, domains, ev)
                elif rhs_iv.singleton and rhs_iv.lo == 0:
                    self._narrow_truthy(atom.lhs, domains, ev)
                return
            if atom.op in _MIRROR:
                self._narrow_compare(atom.op, atom.lhs, atom.rhs, domains, ev)
                return
        # Generic non-boolean expression: nothing useful to push down.

    def _narrow_falsy(
        self, atom: Atom, domains: dict[str, Interval], ev: IntervalEvaluator
    ) -> None:
        """Require ``atom == 0``."""
        if isinstance(atom, int):
            if atom != 0:
                raise _Conflict
            return
        if isinstance(atom, Var):
            self._update(atom, iv.FALSE, domains)
            return
        if isinstance(atom, UnExpr) and atom.op == "!":
            self._narrow_truthy(atom.operand, domains, ev)
            return
        if isinstance(atom, BinExpr):
            if atom.op == "||":
                self._narrow_falsy(atom.lhs, domains, ev)
                self._narrow_falsy(atom.rhs, domains, ev)
                return
            if atom.op == "&&":
                lhs_iv = ev.eval(atom.lhs)
                rhs_iv = ev.eval(atom.rhs)
                if lhs_iv.lo > 0 or lhs_iv.hi < 0:
                    self._narrow_falsy(atom.rhs, domains, ev)
                elif rhs_iv.lo > 0 or rhs_iv.hi < 0:
                    self._narrow_falsy(atom.lhs, domains, ev)
                return
            if atom.op in _MIRROR:
                negated = {
                    "==": "!=", "!=": "==", "<": ">=",
                    ">=": "<", ">": "<=", "<=": ">",
                }[atom.op]
                self._narrow_compare(negated, atom.lhs, atom.rhs, domains, ev)
                return

    def _narrow_compare(
        self, op: str, lhs: Atom, rhs: Atom, domains: dict[str, Interval],
        ev: IntervalEvaluator,
    ) -> None:
        lhs_iv = ev.eval(lhs)
        rhs_iv = ev.eval(rhs)
        if op == "==":
            meet = lhs_iv.intersect(rhs_iv)
            if meet.empty:
                raise _Conflict
            self._narrow_term(lhs, meet, domains, ev)
            self._narrow_term(rhs, meet, domains, ev)
        elif op == "!=":
            if lhs_iv.singleton and rhs_iv.singleton and lhs_iv.lo == rhs_iv.lo:
                raise _Conflict
            if rhs_iv.singleton and isinstance(lhs, Var):
                self._trim_value(lhs, rhs_iv.lo, domains)
            if lhs_iv.singleton and isinstance(rhs, Var):
                self._trim_value(rhs, lhs_iv.lo, domains)
        elif op == "<":
            self._narrow_term(lhs, Interval(iv.LO_MIN, rhs_iv.hi - 1), domains, ev)
            self._narrow_term(rhs, Interval(lhs_iv.lo + 1, iv.HI_MAX), domains, ev)
        elif op == "<=":
            self._narrow_term(lhs, Interval(iv.LO_MIN, rhs_iv.hi), domains, ev)
            self._narrow_term(rhs, Interval(lhs_iv.lo, iv.HI_MAX), domains, ev)
        elif op == ">":
            self._narrow_compare("<", rhs, lhs, domains, ev)
        elif op == ">=":
            self._narrow_compare("<=", rhs, lhs, domains, ev)

    def _trim_value(self, var: Var, value: int, domains: dict[str, Interval]) -> None:
        """Remove ``value`` from a variable's domain if it sits on an endpoint."""
        current = domains.get(var.name, Interval(var.lo, var.hi))
        if current.singleton and current.lo == value:
            raise _Conflict
        if current.lo == value:
            domains[var.name] = Interval(current.lo + 1, current.hi)
            self._changed = True
        elif current.hi == value:
            domains[var.name] = Interval(current.lo, current.hi - 1)
            self._changed = True

    def _narrow_term(
        self, atom: Atom, required: Interval, domains: dict[str, Interval],
        ev: IntervalEvaluator,
    ) -> None:
        """Push ``atom ∈ required`` down through arithmetic structure."""
        if isinstance(atom, int):
            if atom not in required:
                raise _Conflict
            return
        if isinstance(atom, Var):
            self._update(atom, required, domains)
            return
        if isinstance(atom, BinExpr):
            lhs_iv = ev.eval(atom.lhs)
            rhs_iv = ev.eval(atom.rhs)
            if atom.op == "+":
                self._narrow_term(atom.lhs, iv.sub(required, rhs_iv), domains, ev)
                self._narrow_term(atom.rhs, iv.sub(required, lhs_iv), domains, ev)
            elif atom.op == "-":
                self._narrow_term(atom.lhs, iv.add(required, rhs_iv), domains, ev)
                self._narrow_term(
                    atom.rhs, iv.sub(lhs_iv, required), domains, ev
                )
            elif atom.op == "*":
                if rhs_iv.singleton and rhs_iv.lo != 0:
                    self._narrow_term(
                        atom.lhs, _div_exact(required, rhs_iv.lo), domains, ev
                    )
                elif lhs_iv.singleton and lhs_iv.lo != 0:
                    self._narrow_term(
                        atom.rhs, _div_exact(required, lhs_iv.lo), domains, ev
                    )
        elif isinstance(atom, UnExpr) and atom.op == "-":
            self._narrow_term(
                atom.operand, Interval(-required.hi, -required.lo), domains, ev
            )
        # Other operators: no backward rule; forward evaluation still prunes.


def _independent_components(exprs: list[Expr]) -> list[list[Expr]]:
    """Partition constraints into connected components of shared variables."""
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    expr_vars: list[list[str]] = []
    for expr in exprs:
        names = [v.name for v in expr.variables()]
        expr_vars.append(names)
        for name in names:
            parent.setdefault(name, name)
        for other in names[1:]:
            union(names[0], other)

    groups: dict[str, list[Expr]] = {}
    constants: list[Expr] = []
    for expr, names in zip(exprs, expr_vars):
        if not names:
            constants.append(expr)
            continue
        groups.setdefault(find(names[0]), []).append(expr)
    components = list(groups.values())
    if constants:
        components.append(constants)
    return components


def _div_exact(required: Interval, c: int) -> Interval:
    """Solutions x of ``c * x ∈ required`` (c != 0)."""
    import math

    if c > 0:
        lo = math.ceil(required.lo / c)
        hi = math.floor(required.hi / c)
    else:
        lo = math.ceil(required.hi / c)
        hi = math.floor(required.lo / c)
    return Interval(lo, hi)
