"""Constraint solver: interval propagation + branch-and-prune search.

This is the stand-in for the STP solver Klee uses.  Constraints are symbolic
expressions required to be *truthy* (non-zero).  The solver:

1. folds away concrete constraints,
2. narrows variable domains by HC4-style forward/backward interval
   propagation until a fixpoint,
3. searches: enumerate small domains / bisect large ones, propagating after
   every decision, and
4. verifies every model by direct evaluation before reporting SAT (so a
   propagation bug can cost time but never soundness).

Results are cached in a Klee-style :class:`~repro.solver.cache.
CounterexampleCache` keyed by *structural* digests of the constraints
(:func:`~repro.solver.expr.struct_key`), so structurally identical queries
hit even when the expressions were rebuilt by another state, session, or
module compilation.  The cache also answers supersets of known-UNSAT sets
and subsets of known-SAT sets without solving, and remembers (bounded)
budget-exhausting queries so re-checks do not re-burn the search budget.
Because variable domains are finite, the search is complete given enough
budget; budget exhaustion reports UNKNOWN, which callers treat as "possibly
feasible" (search keeps going, never drops paths).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

from . import intervals as iv
from .cache import SAT_SUBSET, UNKNOWN_HIT, UNSAT_SUPERSET, CounterexampleCache
from .expr import Atom, BinExpr, Expr, UnExpr, Var, evaluate, struct_key
from .intervals import Interval, IntervalEvaluator
from .solver_types import Result, Solution


class _Conflict(Exception):
    """A domain became empty during propagation."""


class _BudgetExhausted(Exception):
    """The search budget ran out."""


_MIRROR = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}


@dataclass(slots=True)
class SolverStats:
    """Telemetry counters for one solver.

    Incremented without locking: when portfolio variants share a solver
    across threads, concurrent increments can occasionally be lost, so
    treat the numbers as near-exact telemetry, not an exact ledger (the
    shared :class:`CounterexampleCache` keeps its own locked counters).
    Solver *answers* are unaffected -- per-query search state lives in
    :class:`_SearchCtx` and the cache is locked.
    """

    queries: int = 0
    cache_hits: int = 0  # total component-level hits, all kinds
    unsat_superset_hits: int = 0
    sat_subset_hits: int = 0
    unknown_hits: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    search_nodes: int = 0
    # Model-reuse fast path (driven by Executor._feasible): branch
    # feasibility answered by one concrete evaluation of the state's last
    # satisfying assignment, no solve at all.
    fastpath_hits: int = 0
    fastpath_misses: int = 0
    # Feasibility probes answered by the abstract interpreter's cached
    # facts (the executor's static-pruning hooks): the probe never reaches
    # the solver at all -- not even a witness evaluation runs.
    static_answers: int = 0
    # Branch directions refuted by goal-directed necessary preconditions
    # (:mod:`repro.analysis.wp`): the direction may well be feasible, but
    # no execution down it can reach the goal, so its probe is skipped.
    wp_refuted: int = 0


@dataclass(slots=True)
class _SearchCtx:
    """Per-query mutable search state.

    Kept off the solver instance so one solver (with its shared caches) is
    reentrant: portfolio synthesis runs several variants concurrently
    against the session's single solver.
    """

    budget: int
    changed: bool = False


class Solver:
    """A reusable solver instance with a counterexample cache.

    ``enumeration_limit`` bounds how many values of one variable are tried
    before bisection takes over; ``max_nodes`` bounds total search nodes per
    query.  ``cache`` shares one :class:`CounterexampleCache` across several
    solvers (a :class:`~repro.api.ReproSession` does this per module);
    omitted, the solver gets a private one.  ``structural_keys=False``
    reverts to uid-based cache keys and ``subset_reasoning=False`` disables
    the UNSAT-superset/SAT-subset answers -- both exist for the
    ``bench_solver`` baseline and ablations, not for production use.
    """

    def __init__(
        self,
        enumeration_limit: int = 1024,
        max_nodes: int = 200_000,
        *,
        cache: Optional[CounterexampleCache] = None,
        structural_keys: bool = True,
        subset_reasoning: bool = True,
    ) -> None:
        self.enumeration_limit = enumeration_limit
        self.max_nodes = max_nodes
        self.structural_keys = structural_keys
        self.subset_reasoning = subset_reasoning
        self.stats = SolverStats()
        # `cache or ...` would discard an *empty* shared cache (it has len()).
        self.cache = cache if cache is not None else CounterexampleCache()
        # Observability hooks (repro.obs), both optional and attached by the
        # owner after construction: ``tracer`` records slow queries as
        # solver-query spans, ``latency`` is a histogram fed every query
        # duration.  The disabled path is two attribute loads and two `is
        # None` tests -- no obs code runs, nothing is allocated.
        self.tracer = None
        self.latency = None

    # -- public API -----------------------------------------------------------

    def check(self, constraints: Iterable[Atom]) -> Solution:
        """Decide satisfiability of the conjunction of ``constraints``.

        Constraints are first partitioned into *independent* groups (connected
        components of the shares-a-variable relation, Klee's independent-
        constraint optimization); each component is solved and cached
        separately.  Long path conditions over many unrelated inputs then
        cost one small solve for the component the newest constraint touches,
        with everything else answered from cache.
        """
        tracer = self.tracer
        if (tracer is not None and tracer.enabled) or self.latency is not None:
            start = time.perf_counter()
            solution = self._check_impl(constraints)
            end = time.perf_counter()
            if self.latency is not None:
                self.latency.observe(end - start)
            # Threshold checked here, not in record(): fast queries (the
            # vast majority) then cost two clock reads and one compare --
            # no attrs dict, no method call.
            if (tracer is not None and tracer.enabled
                    and end - start >= tracer.min_record_seconds):
                tracer.record("solver.check", "solver-query", start, end,
                              {"result": solution.result.value})
            return solution
        return self._check_impl(constraints)

    def _check_impl(self, constraints: Iterable[Atom]) -> Solution:
        self.stats.queries += 1
        exprs: list[Expr] = []
        for atom in constraints:
            if isinstance(atom, int):
                if atom == 0:
                    return Solution(Result.UNSAT)
                continue
            exprs.append(atom)
        if not exprs:
            return Solution(Result.SAT)

        merged_model: dict[str, int] = {}
        worst = Result.SAT
        for component in _independent_components(exprs):
            solution = self._check_component(component)
            if solution.result is Result.UNSAT:
                self.stats.unsat += 1
                return Solution(Result.UNSAT)
            if solution.result is Result.UNKNOWN:
                worst = Result.UNKNOWN
            merged_model.update(solution.model)
        if worst is Result.SAT:
            self.stats.sat += 1
            return Solution(Result.SAT, merged_model)
        self.stats.unknown += 1
        return Solution(Result.UNKNOWN)

    def _check_component(self, exprs: list[Expr]) -> Solution:
        if self.structural_keys:
            key = frozenset(struct_key(e) for e in exprs)
        else:
            key = frozenset(e.uid for e in exprs)
        hit = self.cache.lookup(key, self.max_nodes, self.subset_reasoning)
        if hit is not None:
            kind, cached = hit
            if kind == SAT_SUBSET:
                # The stored model solved a *superset*, so it may assign
                # variables outside this component; those extraneous values
                # must not leak into check()'s merged model, where they
                # would clobber a sibling component's assignment.  The
                # restriction still covers every variable of ``exprs``, and
                # re-verification guards against structural-digest
                # collisions: reject the hit rather than report a model the
                # expressions themselves refute.
                names = {v.name for e in exprs for v in e.variables()}
                model = {n: v for n, v in cached.model.items() if n in names}
                if not self._verify(exprs, model):
                    cached = None
                else:
                    cached = Solution(Result.SAT, model)
            if cached is not None:
                self.cache.record_hit(kind)
                self._count_hit(kind)
                return cached
        solution = self._solve(exprs)
        if solution.result is Result.UNKNOWN:
            self.cache.insert_unknown(key, self.max_nodes)
        else:
            self.cache.insert(key, solution)
        return solution

    def _count_hit(self, kind: str) -> None:
        self.stats.cache_hits += 1
        if kind == UNSAT_SUPERSET:
            self.stats.unsat_superset_hits += 1
        elif kind == SAT_SUBSET:
            self.stats.sat_subset_hits += 1
        elif kind == UNKNOWN_HIT:
            self.stats.unknown_hits += 1

    def feasible(self, constraints: Iterable[Atom]) -> bool:
        """May these constraints hold?  UNKNOWN counts as feasible (sound for
        path search: we never drop a path we cannot refute)."""
        return self.check(constraints).maybe_sat

    def model(self, constraints: Iterable[Atom]) -> Optional[dict[str, int]]:
        solution = self.check(constraints)
        return dict(solution.model) if solution.is_sat else None

    # -- core ---------------------------------------------------------------

    def _solve(self, exprs: list[Expr]) -> Solution:
        domains: dict[str, Interval] = {}
        for expr in exprs:
            for var in expr.variables():
                domains.setdefault(var.name, Interval(var.lo, var.hi))
        ctx = _SearchCtx(budget=self.max_nodes)
        try:
            model = self._search(exprs, domains, ctx)
        except _BudgetExhausted:
            return Solution(Result.UNKNOWN)
        if model is None:
            return Solution(Result.UNSAT)
        return Solution(Result.SAT, model)

    def _search(
        self, exprs: list[Expr], domains: dict[str, Interval], ctx: _SearchCtx
    ) -> Optional[dict[str, int]]:
        ctx.budget -= 1
        self.stats.search_nodes += 1
        if ctx.budget <= 0:
            raise _BudgetExhausted
        try:
            domains = self._propagate(exprs, domains, ctx)
        except _Conflict:
            return None

        open_vars = [
            (len(interval), name)
            for name, interval in domains.items()
            if not interval.singleton
        ]
        if not open_vars:
            model = {name: interval.lo for name, interval in domains.items()}
            return model if self._verify(exprs, model) else None

        open_vars.sort()
        size, name = open_vars[0]
        interval = domains[name]
        if size <= self.enumeration_limit:
            for value in self._ordered_values(name, interval, exprs):
                child = dict(domains)
                child[name] = Interval(value, value)
                model = self._search(exprs, child, ctx)
                if model is not None:
                    return model
            return None
        mid = (interval.lo + interval.hi) // 2
        for half in (Interval(interval.lo, mid), Interval(mid + 1, interval.hi)):
            child = dict(domains)
            child[name] = half
            model = self._search(exprs, child, ctx)
            if model is not None:
                return model
        return None

    def _ordered_values(
        self, name: str, interval: Interval, exprs: list[Expr]
    ) -> Iterable[int]:
        """Try equality hints first, then sweep the domain in order."""
        hints: list[int] = []
        for expr in exprs:
            if (
                isinstance(expr, BinExpr)
                and expr.op == "=="
                and isinstance(expr.lhs, Var)
                and expr.lhs.name == name
                and isinstance(expr.rhs, int)
                and expr.rhs in interval
            ):
                hints.append(expr.rhs)
        seen = set(hints)
        yield from hints
        for value in range(interval.lo, interval.hi + 1):
            if value not in seen:
                yield value

    def _verify(self, exprs: list[Expr], model: dict[str, int]) -> bool:
        # KeyError: a digest-collision subset hit can hand us a model that
        # lacks one of the query's variables -- that is a rejection, not a
        # crash.
        try:
            return all(evaluate(expr, model) != 0 for expr in exprs)
        except (ZeroDivisionError, KeyError):
            return False

    # -- propagation ------------------------------------------------------------

    def _propagate(
        self, exprs: list[Expr], domains: dict[str, Interval], ctx: _SearchCtx
    ) -> dict[str, Interval]:
        domains = dict(domains)
        for _ in range(20):  # fixpoint almost always reached in 2-3 rounds
            ctx.changed = False
            evaluator = IntervalEvaluator(domains)
            for expr in exprs:
                result = evaluator.eval(expr)
                if result.singleton and result.lo == 0:
                    raise _Conflict
                self._narrow_truthy(expr, domains, evaluator, ctx)
            if not ctx.changed:
                break
        return domains

    def _update(
        self, var: Var, required: Interval, domains: dict[str, Interval],
        ctx: _SearchCtx,
    ) -> None:
        current = domains.get(var.name, Interval(var.lo, var.hi))
        narrowed = current.intersect(required)
        if narrowed.empty:
            raise _Conflict
        if narrowed != current:
            domains[var.name] = narrowed
            ctx.changed = True

    def _narrow_truthy(
        self, atom: Atom, domains: dict[str, Interval], ev: IntervalEvaluator,
        ctx: _SearchCtx,
    ) -> None:
        """Require ``atom != 0`` and push implied bounds down."""
        if isinstance(atom, int):
            if atom == 0:
                raise _Conflict
            return
        if isinstance(atom, Var):
            # v != 0: can only trim an endpoint.
            self._trim_value(atom, 0, domains, ctx)
            return
        if isinstance(atom, UnExpr) and atom.op == "!":
            self._narrow_falsy(atom.operand, domains, ev, ctx)
            return
        if isinstance(atom, BinExpr):
            if atom.op == "&&":
                self._narrow_truthy(atom.lhs, domains, ev, ctx)
                self._narrow_truthy(atom.rhs, domains, ev, ctx)
                return
            if atom.op == "||":
                lhs_iv = ev.eval(atom.lhs)
                rhs_iv = ev.eval(atom.rhs)
                if lhs_iv.singleton and lhs_iv.lo == 0:
                    self._narrow_truthy(atom.rhs, domains, ev, ctx)
                elif rhs_iv.singleton and rhs_iv.lo == 0:
                    self._narrow_truthy(atom.lhs, domains, ev, ctx)
                return
            if atom.op in _MIRROR:
                self._narrow_compare(atom.op, atom.lhs, atom.rhs, domains, ev, ctx)
                return
        # Generic non-boolean expression: nothing useful to push down.

    def _narrow_falsy(
        self, atom: Atom, domains: dict[str, Interval], ev: IntervalEvaluator,
        ctx: _SearchCtx,
    ) -> None:
        """Require ``atom == 0``."""
        if isinstance(atom, int):
            if atom != 0:
                raise _Conflict
            return
        if isinstance(atom, Var):
            self._update(atom, iv.FALSE, domains, ctx)
            return
        if isinstance(atom, UnExpr) and atom.op == "!":
            self._narrow_truthy(atom.operand, domains, ev, ctx)
            return
        if isinstance(atom, BinExpr):
            if atom.op == "||":
                self._narrow_falsy(atom.lhs, domains, ev, ctx)
                self._narrow_falsy(atom.rhs, domains, ev, ctx)
                return
            if atom.op == "&&":
                lhs_iv = ev.eval(atom.lhs)
                rhs_iv = ev.eval(atom.rhs)
                if lhs_iv.lo > 0 or lhs_iv.hi < 0:
                    self._narrow_falsy(atom.rhs, domains, ev, ctx)
                elif rhs_iv.lo > 0 or rhs_iv.hi < 0:
                    self._narrow_falsy(atom.lhs, domains, ev, ctx)
                return
            if atom.op in _MIRROR:
                negated = {
                    "==": "!=", "!=": "==", "<": ">=",
                    ">=": "<", ">": "<=", "<=": ">",
                }[atom.op]
                self._narrow_compare(negated, atom.lhs, atom.rhs, domains, ev, ctx)
                return

    def _narrow_compare(
        self, op: str, lhs: Atom, rhs: Atom, domains: dict[str, Interval],
        ev: IntervalEvaluator, ctx: _SearchCtx,
    ) -> None:
        lhs_iv = ev.eval(lhs)
        rhs_iv = ev.eval(rhs)
        if op == "==":
            meet = lhs_iv.intersect(rhs_iv)
            if meet.empty:
                raise _Conflict
            self._narrow_term(lhs, meet, domains, ev, ctx)
            self._narrow_term(rhs, meet, domains, ev, ctx)
        elif op == "!=":
            if lhs_iv.singleton and rhs_iv.singleton and lhs_iv.lo == rhs_iv.lo:
                raise _Conflict
            if rhs_iv.singleton and isinstance(lhs, Var):
                self._trim_value(lhs, rhs_iv.lo, domains, ctx)
            if lhs_iv.singleton and isinstance(rhs, Var):
                self._trim_value(rhs, lhs_iv.lo, domains, ctx)
        elif op == "<":
            self._narrow_term(lhs, Interval(iv.LO_MIN, rhs_iv.hi - 1), domains, ev, ctx)
            self._narrow_term(rhs, Interval(lhs_iv.lo + 1, iv.HI_MAX), domains, ev, ctx)
        elif op == "<=":
            self._narrow_term(lhs, Interval(iv.LO_MIN, rhs_iv.hi), domains, ev, ctx)
            self._narrow_term(rhs, Interval(lhs_iv.lo, iv.HI_MAX), domains, ev, ctx)
        elif op == ">":
            self._narrow_compare("<", rhs, lhs, domains, ev, ctx)
        elif op == ">=":
            self._narrow_compare("<=", rhs, lhs, domains, ev, ctx)

    def _trim_value(
        self, var: Var, value: int, domains: dict[str, Interval], ctx: _SearchCtx
    ) -> None:
        """Remove ``value`` from a variable's domain if it sits on an endpoint."""
        current = domains.get(var.name, Interval(var.lo, var.hi))
        if current.singleton and current.lo == value:
            raise _Conflict
        if current.lo == value:
            domains[var.name] = Interval(current.lo + 1, current.hi)
            ctx.changed = True
        elif current.hi == value:
            domains[var.name] = Interval(current.lo, current.hi - 1)
            ctx.changed = True

    def _narrow_term(
        self, atom: Atom, required: Interval, domains: dict[str, Interval],
        ev: IntervalEvaluator, ctx: _SearchCtx,
    ) -> None:
        """Push ``atom ∈ required`` down through arithmetic structure."""
        if isinstance(atom, int):
            if atom not in required:
                raise _Conflict
            return
        if isinstance(atom, Var):
            self._update(atom, required, domains, ctx)
            return
        if isinstance(atom, BinExpr):
            lhs_iv = ev.eval(atom.lhs)
            rhs_iv = ev.eval(atom.rhs)
            if atom.op == "+":
                self._narrow_term(atom.lhs, iv.sub(required, rhs_iv), domains, ev, ctx)
                self._narrow_term(atom.rhs, iv.sub(required, lhs_iv), domains, ev, ctx)
            elif atom.op == "-":
                self._narrow_term(atom.lhs, iv.add(required, rhs_iv), domains, ev, ctx)
                self._narrow_term(
                    atom.rhs, iv.sub(lhs_iv, required), domains, ev, ctx
                )
            elif atom.op == "*":
                if rhs_iv.singleton and rhs_iv.lo != 0:
                    self._narrow_term(
                        atom.lhs, _div_exact(required, rhs_iv.lo), domains, ev, ctx
                    )
                elif lhs_iv.singleton and lhs_iv.lo != 0:
                    self._narrow_term(
                        atom.rhs, _div_exact(required, lhs_iv.lo), domains, ev, ctx
                    )
        elif isinstance(atom, UnExpr) and atom.op == "-":
            self._narrow_term(
                atom.operand, Interval(-required.hi, -required.lo), domains, ev, ctx
            )
        # Other operators: no backward rule; forward evaluation still prunes.


def _independent_components(exprs: list[Expr]) -> list[list[Expr]]:
    """Partition constraints into connected components of shared variables."""
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    expr_vars: list[list[str]] = []
    for expr in exprs:
        names = [v.name for v in expr.variables()]
        expr_vars.append(names)
        for name in names:
            parent.setdefault(name, name)
        for other in names[1:]:
            union(names[0], other)

    groups: dict[str, list[Expr]] = {}
    constants: list[Expr] = []
    for expr, names in zip(exprs, expr_vars):
        if not names:
            constants.append(expr)
            continue
        groups.setdefault(find(names[0]), []).append(expr)
    components = list(groups.values())
    if constants:
        components.append(constants)
    return components


def _div_exact(required: Interval, c: int) -> Interval:
    """Solutions x of ``c * x ∈ required`` (c != 0)."""
    import math

    if c > 0:
        lo = math.ceil(required.lo / c)
        hi = math.floor(required.hi / c)
    else:
        lo = math.ceil(required.hi / c)
        hi = math.floor(required.lo / c)
    return Interval(lo, hi)
