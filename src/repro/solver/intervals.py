"""Interval arithmetic for constraint propagation.

The solver narrows variable domains with HC4-style propagation: a forward
pass evaluates the interval of every expression node bottom-up, a backward
pass pushes the required result interval down through each operator.
Narrowing is *sound but not complete*: it may keep values that are not
solutions (the search fixes that), but it never drops a real solution.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import BinExpr, Expr, UnExpr, Var

# All program values are signed 32-bit; intervals never need to exceed this.
LO_MIN = -(2**31)
HI_MAX = 2**31 - 1


@dataclass(frozen=True, slots=True)
class Interval:
    lo: int
    hi: int

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    @property
    def singleton(self) -> bool:
        return self.lo == self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __len__(self) -> int:
        return 0 if self.empty else self.hi - self.lo + 1

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


EMPTY = Interval(1, 0)
FULL = Interval(LO_MIN, HI_MAX)
TRUE = Interval(1, 1)
FALSE = Interval(0, 0)
BOOL = Interval(0, 1)


def _clamp(lo: int, hi: int) -> Interval:
    return Interval(max(lo, LO_MIN), min(hi, HI_MAX))


def add(a: Interval, b: Interval) -> Interval:
    return _clamp(a.lo + b.lo, a.hi + b.hi)


def sub(a: Interval, b: Interval) -> Interval:
    return _clamp(a.lo - b.hi, a.hi - b.lo)


def mul(a: Interval, b: Interval) -> Interval:
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return _clamp(min(products), max(products))


def divide(a: Interval, b: Interval) -> Interval:
    """C truncating division; conservative when the divisor spans zero."""
    if 0 in b:
        # Dividing by something near zero can produce any magnitude.
        return FULL
    candidates = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            q = abs(x) // abs(y)
            candidates.append(-q if (x < 0) != (y < 0) else q)
    return _clamp(min(candidates), max(candidates))


def modulo(a: Interval, b: Interval) -> Interval:
    if b.lo == b.hi and b.lo > 0:
        c = b.lo
        if a.lo >= 0:
            if a.hi < c:
                return a  # no reduction happens
            return Interval(0, c - 1)
        return Interval(-(c - 1), c - 1)
    return FULL


def shift_left(a: Interval, b: Interval) -> Interval:
    if b.singleton and 0 <= b.lo <= 31 and a.lo >= 0:
        return _clamp(a.lo << b.lo, a.hi << b.lo)
    return FULL


def shift_right(a: Interval, b: Interval) -> Interval:
    if b.singleton and 0 <= b.lo <= 31:
        return _clamp(a.lo >> b.lo, a.hi >> b.lo)
    return FULL


def bit_and(a: Interval, b: Interval) -> Interval:
    if a.lo >= 0 and b.lo >= 0:
        return Interval(0, min(a.hi, b.hi))
    return FULL


def bit_or(a: Interval, b: Interval) -> Interval:
    if a.lo >= 0 and b.lo >= 0:
        bound = _next_pow2_minus1(max(a.hi, b.hi))
        return Interval(0, min(bound, HI_MAX))
    return FULL


def bit_xor(a: Interval, b: Interval) -> Interval:
    return bit_or(a, b)


def _next_pow2_minus1(value: int) -> int:
    bound = 1
    while bound <= value:
        bound <<= 1
    return bound - 1


_FORWARD = {
    "+": add,
    "-": sub,
    "*": mul,
    "/": divide,
    "%": modulo,
    "<<": shift_left,
    ">>": shift_right,
    "&": bit_and,
    "|": bit_or,
    "^": bit_xor,
}


def _compare_forward(op: str, a: Interval, b: Interval) -> Interval:
    if op == "==":
        if a.singleton and b.singleton:
            return TRUE if a.lo == b.lo else FALSE
        if a.intersect(b).empty:
            return FALSE
        return BOOL
    if op == "!=":
        inner = _compare_forward("==", a, b)
        if inner is TRUE:
            return FALSE
        if inner is FALSE:
            return TRUE
        return BOOL
    if op == "<":
        if a.hi < b.lo:
            return TRUE
        if a.lo >= b.hi:
            return FALSE
        return BOOL
    if op == "<=":
        if a.hi <= b.lo:
            return TRUE
        if a.lo > b.hi:
            return FALSE
        return BOOL
    if op == ">":
        return _compare_forward("<", b, a)
    if op == ">=":
        return _compare_forward("<=", b, a)
    raise KeyError(op)


def _logic_forward(op: str, a: Interval, b: Interval) -> Interval:
    a_true = a.lo > 0 or a.hi < 0
    a_false = a.singleton and a.lo == 0
    b_true = b.lo > 0 or b.hi < 0
    b_false = b.singleton and b.lo == 0
    if op == "&&":
        if a_false or b_false:
            return FALSE
        if a_true and b_true:
            return TRUE
        return BOOL
    if a_true or b_true:
        return TRUE
    if a_false and b_false:
        return FALSE
    return BOOL


class IntervalEvaluator:
    """Forward interval evaluation with per-call memoization."""

    def __init__(self, domains: dict[str, Interval]) -> None:
        self._domains = domains
        self._memo: dict[int, Interval] = {}

    def eval(self, atom) -> Interval:
        if isinstance(atom, int):
            return Interval(atom, atom)
        return self._eval_expr(atom)

    def _eval_expr(self, expr: Expr) -> Interval:
        cached = self._memo.get(expr.uid)
        if cached is not None:
            return cached
        if isinstance(expr, Var):
            result = self._domains.get(expr.name, Interval(expr.lo, expr.hi))
        elif isinstance(expr, BinExpr):
            a = self.eval(expr.lhs)
            b = self.eval(expr.rhs)
            if expr.op in _FORWARD:
                result = _FORWARD[expr.op](a, b)
            elif expr.op in ("&&", "||"):
                result = _logic_forward(expr.op, a, b)
            else:
                result = _compare_forward(expr.op, a, b)
        elif isinstance(expr, UnExpr):
            inner = self.eval(expr.operand)
            if expr.op == "-":
                result = Interval(-inner.hi, -inner.lo)
            elif expr.op == "!":
                if inner.singleton and inner.lo == 0:
                    result = TRUE
                elif 0 not in inner:
                    result = FALSE
                else:
                    result = BOOL
            else:  # '~'
                result = Interval(~inner.hi, ~inner.lo)
        else:  # pragma: no cover
            raise TypeError(f"unknown node {expr!r}")
        self._memo[expr.uid] = result
        return result
