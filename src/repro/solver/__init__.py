"""Symbolic expressions and the constraint solver (the repo's STP stand-in)."""

from .cache import CacheStats, CounterexampleCache
from .expr import (
    Atom,
    BinExpr,
    Expr,
    UnExpr,
    Var,
    binop,
    evaluate,
    holds_under,
    intern_table_size,
    make_var,
    negate,
    set_intern_limit,
    struct_key,
    truthy,
    unop,
    walk,
)
from .intervals import Interval, IntervalEvaluator
from .solver import Solver, SolverStats
from .solver_types import Result, Solution

__all__ = [
    "Atom",
    "BinExpr",
    "CacheStats",
    "CounterexampleCache",
    "Expr",
    "Interval",
    "IntervalEvaluator",
    "Result",
    "Solution",
    "Solver",
    "SolverStats",
    "UnExpr",
    "Var",
    "binop",
    "evaluate",
    "holds_under",
    "intern_table_size",
    "make_var",
    "negate",
    "set_intern_limit",
    "struct_key",
    "truthy",
    "unop",
    "walk",
]
