"""Symbolic expressions and the constraint solver (the repo's STP stand-in)."""

from .expr import (
    Atom,
    BinExpr,
    Expr,
    UnExpr,
    Var,
    binop,
    evaluate,
    make_var,
    negate,
    truthy,
    unop,
    walk,
)
from .intervals import Interval, IntervalEvaluator
from .solver import Result, Solution, Solver, SolverStats

__all__ = [
    "Atom",
    "BinExpr",
    "Expr",
    "Interval",
    "IntervalEvaluator",
    "Result",
    "Solution",
    "Solver",
    "SolverStats",
    "UnExpr",
    "Var",
    "binop",
    "evaluate",
    "make_var",
    "negate",
    "truthy",
    "unop",
    "walk",
]
