"""``python -m repro`` runs the unified CLI."""

import sys

from .cli import repro_main

if __name__ == "__main__":
    sys.exit(repro_main())
