"""ls1-ls4: a mini ``ls`` with four injected null-pointer dereferences.

The paper introduces four null-pointer-dereference bugs in the 3-KLOC ls
utility as the baseline-friendly workloads for Figure 2 ("for which KC does
find a path in less than one hour").  This mini ls has option parsing, a
synthetic directory table, filtering, three sort orders, reversal, and two
output formats; each variant injects one bug at a different depth of the
option-combination space, giving the same easy-to-hard gradient:

* ls1 -- shallow: triggered by the ``-q`` flag alone (option parsing);
* ls2 -- two flags: ``-l`` and ``-r`` together (long listing of a reversed list);
* ls3 -- two flags plus data: ``-t`` sort with enough entries;
* ls4 -- three flags: ``-R -a -1`` (recursion bookkeeping).
"""

from __future__ import annotations

from ..symbex import BugKind, RecordedInputs
from .base import Workload

_BUG_SNIPPETS = {
    1: ("/* BUG1 */", """
        if (flag_q == 1) {
            int *quote_table = 0;
            quoting = quote_table[0];
        }
"""),
    2: ("/* BUG2 */", """
    if (flag_l == 1 && flag_r == 1) {
        int *fmt = 0;
        width = fmt[1];
    }
"""),
    3: ("/* BUG3 */", """
    if (flag_t == 1 && count > 2) {
        int *clock = 0;
        now = clock[0];
    }
"""),
    4: ("/* BUG4 */", """
        if (flag_R == 1 && flag_a == 1 && flag_1 == 1) {
            int *stack = 0;
            depth = stack[2];
        }
"""),
}

_BASE_SOURCE = """
// mini ls: list a synthetic directory with sorting and formats

int names[48] = {
    'd', 'o', 'c', 's', 0, 0,
    '.', 'g', 'i', 't', 0, 0,
    'm', 'a', 'i', 'n', '.', 'c',
    'l', 'i', 'b', '.', 'c', 0,
    'R', 'E', 'A', 'D', 'M', 'E',
    '.', 'e', 'n', 'v', 0, 0,
    't', 'e', 's', 't', 's', 0,
    'b', 'u', 'i', 'l', 'd', 0
};
int sizes[8] = {4096, 512, 2048, 1024, 300, 64, 4096, 8192};
int mtimes[8] = {50, 10, 90, 70, 30, 20, 80, 60};
int is_dir[8] = {1, 1, 0, 0, 0, 0, 1, 1};
int order[8];
int count = 0;

int flag_a = 0;
int flag_l = 0;
int flag_r = 0;
int flag_t = 0;
int flag_S = 0;
int flag_R = 0;
int flag_1 = 0;
int flag_q = 0;
int quoting = 0;
int width = 80;
int now = 100;
int depth = 0;
int printed = 0;

int name_char(int entry, int i) {
    return names[entry * 6 + i];
}

int is_hidden(int entry) {
    return name_char(entry, 0) == '.';
}

int name_cmp(int a, int b) {
    int i = 0;
    while (i < 6) {
        int ca = name_char(a, i);
        int cb = name_char(b, i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}

int entry_cmp(int a, int b) {
    if (flag_t == 1) {
        return mtimes[b] - mtimes[a];
    }
    if (flag_S == 1) {
        return sizes[b] - sizes[a];
    }
    return name_cmp(a, b);
}

void parse_options(int argn) {
    int i = 1;
    while (i < argn) {
        int *opt = arg(i);
        if (opt[0] == '-') {
            int j = 1;
            while (opt[j] != 0) {
                int c = opt[j];
                if (c == 'a') { flag_a = 1; }
                else if (c == 'l') { flag_l = 1; }
                else if (c == 'r') { flag_r = 1; }
                else if (c == 't') { flag_t = 1; }
                else if (c == 'S') { flag_S = 1; }
                else if (c == 'R') { flag_R = 1; }
                else if (c == '1') { flag_1 = 1; }
                else if (c == 'q') { flag_q = 1; }
                /* BUG1 */
                j = j + 1;
            }
        }
        i = i + 1;
    }
}

void collect_entries(int unused) {
    int i = 0;
    count = 0;
    while (i < 8) {
        if (flag_a == 1 || is_hidden(i) == 0) {
            order[count] = i;
            count = count + 1;
        }
        i = i + 1;
    }
}

void sort_entries(int unused) {
    int i = 1;
    while (i < count) {
        int key = order[i];
        int j = i - 1;
        while (j >= 0 && entry_cmp(order[j], key) > 0) {
            order[j + 1] = order[j];
            j = j - 1;
        }
        order[j + 1] = key;
        i = i + 1;
    }
    /* BUG3 */
    if (flag_r == 1) {
        int lo = 0;
        int hi = count - 1;
        while (lo < hi) {
            int tmp = order[lo];
            order[lo] = order[hi];
            order[hi] = tmp;
            lo = lo + 1;
            hi = hi - 1;
        }
    }
}

void print_entry(int entry) {
    if (flag_l == 1) {
        if (is_dir[entry] == 1) { print_str("d"); }
        print_int(sizes[entry]);
        print_int(now - mtimes[entry]);
    }
    int i = 0;
    while (i < 6) {
        int c = name_char(entry, i);
        if (c == 0) { break; }
        i = i + 1;
    }
    printed = printed + 1;
}

void list_directory(int unused) {
    collect_entries(0);
    sort_entries(0);
    /* BUG2 */
    int i = 0;
    while (i < count) {
        print_entry(order[i]);
        i = i + 1;
    }
    if (flag_R == 1) {
        int e = 0;
        while (e < count) {
            if (is_dir[order[e]] == 1) {
                depth = depth + 1;
                /* BUG4 */
            }
            e = e + 1;
        }
    }
}

int main() {
    parse_options(argc());
    list_directory(0);
    return printed;
}
"""


def ls_source(bug: int) -> str:
    source = _BASE_SOURCE
    for number, (marker, snippet) in _BUG_SNIPPETS.items():
        source = source.replace(marker, snippet if number == bug else "")
    return source


_TRIGGERS = {
    1: RecordedInputs(args=["-q"], argc=2),
    2: RecordedInputs(args=["-lr"], argc=2),
    3: RecordedInputs(args=["-t"], argc=2),
    4: RecordedInputs(args=["-Ra1"], argc=2),
}


def _make(bug: int) -> Workload:
    return Workload(
        name=f"ls{bug}",
        source=ls_source(bug),
        bug_type="crash",
        expected_kind=BugKind.NULL_DEREF,
        description=f"crash: injected null dereference #{bug} in mini ls",
        trigger_inputs=_TRIGGERS[bug],
    )


LS1 = _make(1)
LS2 = _make(2)
LS3 = _make(3)
LS4 = _make(4)
