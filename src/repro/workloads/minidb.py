"""minidb: an embedded key-value database with a custom recursive lock.

Stands in for SQLite 3.3.0 and its bug #1672 -- "a deadlock in the custom
recursive lock implementation" (paper section 7.1).  The database has a
pager layer (page cache + rollback journal), a table layer (open-addressed
key/value store), and a hand-rolled recursive lock built from two POSIX
mutexes: ``rl_master`` protecting the owner/count bookkeeping and
``rl_real`` providing the actual exclusion.

The bug: ``rl_enter`` acquires ``rl_real`` while *still holding*
``rl_master`` (the fixed version releases the bookkeeping mutex before
blocking).  A writer inside a transaction that calls ``rl_leave`` takes the
two mutexes in the opposite order, so:

  T1 (reader)  rl_enter: holds rl_master, blocks on rl_real
  T2 (writer)  rl_leave: holds rl_real (transaction), blocks on rl_master

which is a circular wait.
"""

from __future__ import annotations

from .. import ir
from ..baselines import Directive
from ..symbex import BugKind, RecordedInputs
from .base import Workload

SOURCE = """
// minidb: embedded database engine (SQLite bug #1672 analogue)

mutex rl_master;        // protects rl_owner / rl_count
mutex rl_real;          // the actual exclusion lock
int rl_owner = -1;
int rl_count = 0;

int pages[64];          // pager: 16 pages of 4 cells
int page_state[16];     // 0 clean, 1 dirty
int journal[32];
int journal_len = 0;
int sync_mode = 1;

int table_keys[16];
int table_vals[16];
int table_used[16];
int table_count = 0;

int committed = 0;
int aborted = 0;

// ---- custom recursive lock (the buggy component) ----

void rl_enter(int tid) {
    lock(rl_master);
    if (rl_owner == tid) {
        rl_count = rl_count + 1;
        unlock(rl_master);
        return;
    }
    // BUG (#1672 analogue): blocks on the real lock while still holding
    // the bookkeeping mutex.  The fix releases rl_master first.
    lock(rl_real);
    rl_owner = tid;
    rl_count = 1;
    unlock(rl_master);
}

void rl_leave(int tid) {
    lock(rl_master);
    rl_count = rl_count - 1;
    if (rl_count == 0) {
        rl_owner = -1;
        unlock(rl_real);
    }
    unlock(rl_master);
}

// ---- pager layer ----

int page_of(int key) {
    int h = key * 31 + 7;
    if (h < 0) { h = 0 - h; }
    return h % 16;
}

void pager_touch(int page) {
    if (page_state[page] == 0) {
        page_state[page] = 1;
        if (journal_len < 32) {
            journal[journal_len] = page;
            journal_len = journal_len + 1;
        }
    }
}

void pager_write(int page, int slot, int value) {
    pager_touch(page);
    pages[page * 4 + slot % 4] = value;
}

void pager_sync(int unused) {
    if (sync_mode == 0) { return; }
    int i = 0;
    while (i < journal_len) {
        page_state[journal[i]] = 0;
        i = i + 1;
    }
    journal_len = 0;
}

// ---- table layer ----

int table_slot(int key) {
    int h = key % 16;
    if (h < 0) { h = h + 16; }
    int probes = 0;
    while (probes < 16) {
        if (table_used[h] == 0 || table_keys[h] == key) {
            return h;
        }
        h = (h + 1) % 16;
        probes = probes + 1;
    }
    return -1;
}

int db_put(int tid, int key, int value) {
    rl_enter(tid);
    int slot = table_slot(key);
    if (slot < 0) {
        aborted = aborted + 1;
        rl_leave(tid);
        return -1;
    }
    if (table_used[slot] == 0) {
        table_used[slot] = 1;
        table_keys[slot] = key;
        table_count = table_count + 1;
    }
    table_vals[slot] = value;
    pager_write(page_of(key), slot, value);
    rl_leave(tid);
    return 0;
}

int db_get(int tid, int key) {
    rl_enter(tid);
    int slot = table_slot(key);
    int result = -1;
    if (slot >= 0 && table_used[slot] == 1) {
        result = table_vals[slot];
    }
    rl_leave(tid);
    return result;
}

int db_begin(int tid) {
    rl_enter(tid);
    return 0;
}

int db_commit(int tid) {
    pager_sync(0);
    committed = committed + 1;
    rl_leave(tid);
    return 0;
}

// ---- client threads ----

int txn_mode = 0;   // 1: explicit transactions (the deadlock window)

void writer(int tid) {
    if (txn_mode == 1) {
        // Write-ahead journal mode keeps the recursive lock held across
        // the whole transaction: the window in which rl_leave's
        // master-acquisition can deadlock against a concurrent rl_enter.
        db_begin(tid);
        int i = 0;
        while (i < 4) {
            db_put(tid, i * 7 + 1, i + 100);
            i = i + 1;
        }
        db_commit(tid);
    } else {
        // Autocommit: enter/leave per operation, no nesting.
        int j = 0;
        while (j < 4) {
            db_put(tid, j * 7 + 1, j + 100);
            j = j + 1;
        }
    }
}

void reader(int tid) {
    int total = 0;
    int i = 0;
    while (i < 8) {
        total = total + db_get(tid, i * 7 + 1);
        i = i + 1;
    }
}

int main() {
    int *mode = getenv("SYNCHRONOUS");
    if (mode[0] == '0') {
        sync_mode = 0;
    }
    int *journal = getenv("JOURNAL");
    if (journal[0] == 'W' && journal[1] == 'A' && journal[2] == 'L') {
        txn_mode = 1;
    }
    int t1 = spawn(writer, 1);
    int t2 = spawn(reader, 2);
    int t3 = spawn(reader, 3);
    join(t1);
    join(t2);
    join(t3);
    return committed;
}
"""


def _directives(module: ir.Module) -> list[Directive]:
    """The end-user's unlucky schedule: preempt the writer right after its
    transaction-opening rl_enter releases rl_master; the reader then grabs
    rl_master and blocks on rl_real; the writer later blocks on rl_master in
    rl_leave."""
    unlocks = [
        ref for ref, instr in module.functions["rl_enter"].iter_instructions()
        if isinstance(instr, ir.MutexUnlock)
    ]
    # The acquire-path unlock is the last unlock in rl_enter.
    return [Directive(unlocks[-1], 1, 2)]


WORKLOAD = Workload(
    name="minidb",
    source=SOURCE,
    bug_type="deadlock",
    expected_kind=BugKind.DEADLOCK,
    description="hang: deadlock in the custom recursive lock (SQLite #1672)",
    trigger_inputs=RecordedInputs(env={"SYNCHRONOUS": "1", "JOURNAL": "WAL"}),
    directives=_directives,
    paper_seconds=150.0,
)
