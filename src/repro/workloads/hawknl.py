"""hawknl: a game networking library with an nl_close/nl_shutdown deadlock.

Stands in for HawkNL 1.6b3 (paper section 7.1): "when two threads happen to
call nlClose() and nlShutdown() at the same time on the same socket, HawkNL
deadlocks."  ``nl_close`` takes the per-socket lock, then the library master
lock (to remove the socket from the global table); ``nl_shutdown`` walks the
socket table holding the master lock and takes each socket lock -- a classic
lock-order inversion.
"""

from __future__ import annotations

from .. import ir
from ..baselines import Directive
from ..symbex import BugKind, RecordedInputs
from .base import Workload

SOURCE = """
// mini HawkNL: sockets, buffered writes, group management

mutex master_lock;      // protects the global socket table
mutex sock_lock;        // the per-socket lock (one socket in this driver)

int nl_inited = 0;
int sock_open = 0;
int sock_buffer[32];
int sock_buflen = 0;
int sock_sent = 0;
int groups[8];
int group_count = 0;
int shutdown_done = 0;

int nl_init(int unused) {
    lock(master_lock);
    nl_inited = 1;
    group_count = 0;
    unlock(master_lock);
    return 1;
}

int nl_open(int port) {
    lock(master_lock);
    if (nl_inited == 0) {
        unlock(master_lock);
        return -1;
    }
    sock_open = 1;
    sock_buflen = 0;
    unlock(master_lock);
    return 0;
}

int nl_write(int byte) {
    lock(sock_lock);
    if (sock_open == 0) {
        unlock(sock_lock);
        return -1;
    }
    if (sock_buflen < 32) {
        sock_buffer[sock_buflen] = byte;
        sock_buflen = sock_buflen + 1;
    }
    unlock(sock_lock);
    return 1;
}

void flush_buffer(int unused) {
    int i = 0;
    while (i < sock_buflen) {
        sock_sent = sock_sent + 1;
        i = i + 1;
    }
    sock_buflen = 0;
}

int sock_grouped = 0;

int nl_groupjoin(int g) {
    lock(master_lock);
    if (group_count < 8) {
        groups[group_count] = g;
        group_count = group_count + 1;
        sock_grouped = 1;
    }
    unlock(master_lock);
    return sock_grouped;
}

void nl_close(int s) {
    lock(sock_lock);
    flush_buffer(0);
    sock_open = 0;
    if (sock_grouped == 1) {
        // A grouped socket must also leave the global group table: the
        // master lock is taken here in sock -> master order, inverted
        // w.r.t. nl_shutdown's master -> sock.
        lock(master_lock);
        if (group_count > 0) {
            group_count = group_count - 1;
        }
        sock_grouped = 0;
        unlock(master_lock);
    }
    unlock(sock_lock);
}

void nl_shutdown(int unused) {
    // walks all sockets in master -> sock order: inverted w.r.t. nl_close
    lock(master_lock);
    if (sock_open == 1) {
        lock(sock_lock);
        flush_buffer(0);
        sock_open = 0;
        unlock(sock_lock);
    }
    nl_inited = 0;
    shutdown_done = 1;
    unlock(master_lock);
}

void closer(int unused) {
    nl_write('x');
    nl_close(0);
}

void downer(int unused) {
    nl_shutdown(0);
}

void pumper(int n) {
    // Background traffic: each write takes and releases the socket lock,
    // giving undirected schedule search a large tree to wade through.
    int i = 0;
    while (i < n) {
        nl_write('p');
        i = i + 1;
    }
}

int main() {
    nl_init(0);
    int port = getchar();
    if (nl_open(port) < 0) {
        return 1;
    }
    int *grouping = getenv("NL_GROUP");
    if (grouping[0] == '1') {
        nl_groupjoin(7);
    }
    nl_write('h');
    nl_write('i');
    int p1 = spawn(pumper, 5);
    int p2 = spawn(pumper, 5);
    int t1 = spawn(closer, 0);
    int t2 = spawn(downer, 0);
    join(p1);
    join(p2);
    join(t1);
    join(t2);
    return shutdown_done;
}
"""


def _directives(module: ir.Module) -> list[Directive]:
    """Preempt the closer right after it acquires the socket lock; the
    shutdown thread then takes the master lock and blocks on the socket
    lock, and the closer blocks on the master lock."""
    close_locks = [
        ref for ref, instr in module.functions["nl_close"].iter_instructions()
        if isinstance(instr, ir.MutexLock)
    ]
    # Threads: 1,2 = pumpers, 3 = closer, 4 = downer.
    return [Directive(close_locks[0], 3, 4)]


WORKLOAD = Workload(
    name="hawknl",
    source=SOURCE,
    bug_type="deadlock",
    expected_kind=BugKind.DEADLOCK,
    description="hang: nl_close vs nl_shutdown lock-order inversion (HawkNL 1.6b3)",
    trigger_inputs=RecordedInputs(stdin=[80], env={"NL_GROUP": "1"}),
    directives=_directives,
    paper_seconds=122.0,
)
