"""Mini coreutils with their real reported crashes (paper Table 1).

* ``paste`` -- invalid free for some inputs: ``-d ""`` makes the
  escape-collapsing helper return the *static* default delimiter, which the
  cleanup path then frees.
* ``tac`` -- segfault: the backward separator scan has no lower bound, so a
  file that does not contain the separator walks off the front of the
  buffer.
* ``mkdir``, ``mknod``, ``mkfifo`` -- segfaults on error-handling paths: an
  invalid ``-m`` mode string makes ``parse_mode`` return NULL, and the error
  diagnostic dereferences it.
"""

from __future__ import annotations

from ..symbex import BugKind, RecordedInputs
from .base import Workload

PASTE_SOURCE = """
// mini paste: merge lines with a delimiter list

int line_a[8] = {'a', '1', 0, 'a', '2', 0, 'a', '3'};
int line_b[8] = {'b', '1', 0, 'b', '2', 0, 'b', '3'};
int out[64];
int outlen = 0;

int *collapse_escapes(int *s) {
    if (s[0] == 0) {
        // BUG (paste -d ''): falls back to the static default delimiter,
        // but the caller still believes it allocated the buffer.
        return "\\t";
    }
    int *buf = malloc(16);
    int i = 0;
    int j = 0;
    while (s[i] != 0 && j < 15) {
        int c = s[i];
        if (c == '\\\\') {
            i = i + 1;
            int e = s[i];
            if (e == 'n') { c = 10; }
            else if (e == 't') { c = 9; }
            else if (e == '0') { c = 0; }
            else if (e == 0) { c = '\\\\'; i = i - 1; }
            else { c = e; }
        }
        buf[j] = c;
        j = j + 1;
        i = i + 1;
    }
    buf[j] = 0;
    return buf;
}

void emit(int c) {
    if (outlen < 63) {
        out[outlen] = c;
        outlen = outlen + 1;
    }
}

void paste_fields(int *delims) {
    int dlen = strlen(delims);
    if (dlen == 0) { dlen = 1; }
    int field = 0;
    while (field < 2) {
        int i = field * 3;
        emit(line_a[i]);
        emit(line_a[i + 1]);
        emit(delims[field % dlen]);
        emit(line_b[i]);
        emit(line_b[i + 1]);
        emit(10);
        field = field + 1;
    }
}

int main() {
    int *delims = "\\t";
    int allocated = 0;
    if (argc() >= 3) {
        int *opt = arg(1);
        if (opt[0] == '-' && opt[1] == 'd' && opt[2] == 0) {
            delims = collapse_escapes(arg(2));
            allocated = 1;
        }
    }
    paste_fields(delims);
    if (allocated == 1) {
        free(delims);   // invalid free when collapse_escapes fell back
    }
    return outlen;
}
"""

TAC_SOURCE = """
// mini tac: print records last-first, separated by newline

int out[32];
int outlen = 0;

void emit_range(int *buf, int from, int to) {
    int i = from;
    while (i < to && outlen < 31) {
        out[outlen] = buf[i];
        outlen = outlen + 1;
        i = i + 1;
    }
}

int main() {
    int *buf = read_input("file", 12);
    int len = 0;
    while (len < 12 && buf[len] != 0) {
        len = len + 1;
    }
    if (len == 0) {
        return 0;
    }
    int end = len;
    while (end > 0) {
        // scan backward for the previous separator
        int i = end - 1;
        while (buf[i] != 10) {
            // BUG: no lower bound -- a file without any separator walks
            // past the front of the buffer (tac segfault).
            i = i - 1;
        }
        emit_range(buf, i + 1, end);
        end = i;
    }
    return outlen;
}
"""

_MODE_UTIL_TEMPLATE = """
// mini {name}: create {what} with an optional -m MODE

int created = 0;

int *parse_mode(int *s) {{
    int *bits = malloc(4);
    bits[0] = 0;
    bits[1] = 0;
    bits[2] = 0;
    bits[3] = 0;
    int i = 0;
    while (s[i] != 0) {{
        int c = s[i];
        if (c == 'r') {{ bits[0] = 1; }}
        else if (c == 'w') {{ bits[1] = 1; }}
        else if (c == 'x') {{ bits[2] = 1; }}
        else if (c >= '0' && c <= '7') {{ bits[3] = bits[3] * 8 + (c - '0'); }}
        else {{
            free(bits);
            return 0;
        }}
        i = i + 1;
    }}
    return bits;
}}

int do_create(int *name, int *mode) {{
    if (name[0] == 0) {{
        return -1;
    }}
    created = created + 1;
    return mode[3];
}}
{extra_functions}
int main() {{
    if (argc() < 2) {{
        print_str("usage: {name} [-m MODE] NAME");
        return 2;
    }}
    int *mode_bits = 0;
    int have_mode = 0;
    int name_index = 1;
    int *first = arg(1);
    if (first[0] == '-' && first[1] == 'm' && first[2] == 0) {{
        mode_bits = parse_mode(arg(2));
        have_mode = 1;
        name_index = 3;
        if (mode_bits == 0) {{
            // BUG ({name}): the error path reports the rejected mode by
            // reading through the NULL result (segfault on the error
            // handling path, as in the reported coreutils bugs).
            print_str("{name}: invalid mode:");
            print_int(mode_bits[3]);
            return 1;
        }}
    }}
    if (have_mode == 0) {{
        mode_bits = parse_mode("rw");
    }}
{body}
    return 0;
}}
"""

MKDIR_SOURCE = _MODE_UTIL_TEMPLATE.format(
    name="mkdir",
    what="directories",
    extra_functions="""
int make_parents(int *path, int *mode) {
    int depth = 0;
    int i = 0;
    while (path[i] != 0) {
        if (path[i] == '/') {
            depth = depth + 1;
            do_create(path, mode);
        }
        i = i + 1;
    }
    return depth;
}
""",
    body="""
    int *target = arg(name_index);
    make_parents(target, mode_bits);
    if (do_create(target, mode_bits) < 0) {
        return 1;
    }
""",
)

MKNOD_SOURCE = _MODE_UTIL_TEMPLATE.format(
    name="mknod",
    what="device nodes",
    extra_functions="""
int check_type(int c) {
    if (c == 'b') { return 1; }
    if (c == 'c') { return 2; }
    if (c == 'p') { return 3; }
    return 0;
}
""",
    body="""
    int *target = arg(name_index);
    int *type_arg = arg(name_index + 1);
    int node_type = check_type(type_arg[0]);
    if (node_type == 0) {
        print_str("mknod: invalid type");
        return 1;
    }
    if (do_create(target, mode_bits) < 0) {
        return 1;
    }
""",
)

MKFIFO_SOURCE = _MODE_UTIL_TEMPLATE.format(
    name="mkfifo",
    what="named pipes",
    extra_functions="",
    body="""
    int *target = arg(name_index);
    if (do_create(target, mode_bits) < 0) {
        return 1;
    }
""",
)

PASTE = Workload(
    name="paste",
    source=PASTE_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.INVALID_FREE,
    description="crash: invalid free when -d is given an empty delimiter list",
    trigger_inputs=RecordedInputs(args=["-d", ""], argc=3),
    paper_seconds=25.0,
)

TAC = Workload(
    name="tac",
    source=TAC_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.OUT_OF_BOUNDS,
    description="crash: backward separator scan underruns the buffer when "
    "the input contains no separator",
    trigger_inputs=RecordedInputs(buffers={"file": [ord("a"), ord("b"), ord("c")]}),
    paper_seconds=11.0,
)

MKDIR = Workload(
    name="mkdir",
    source=MKDIR_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.NULL_DEREF,
    description="crash: NULL dereference on the invalid-mode error path",
    trigger_inputs=RecordedInputs(args=["-m", "z", "dir"], argc=4),
    paper_seconds=15.0,
)

MKNOD = Workload(
    name="mknod",
    source=MKNOD_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.NULL_DEREF,
    description="crash: NULL dereference on the invalid-mode error path",
    trigger_inputs=RecordedInputs(args=["-m", "q", "dev", "b"], argc=5),
    paper_seconds=20.0,
)

MKFIFO = Workload(
    name="mkfifo",
    source=MKFIFO_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.NULL_DEREF,
    description="crash: NULL dereference on the invalid-mode error path",
    trigger_inputs=RecordedInputs(args=["-m", "!", "pipe"], argc=4),
    paper_seconds=15.0,
)
