"""The evaluation workloads (paper Table 1 + the Figure 2 ls variants)."""

from .base import Workload
from .coreutils import MKDIR, MKFIFO, MKNOD, PASTE, TAC
from .ghttpd import GHTTPD_HARD, WORKLOAD as GHTTPD
from .hawknl import WORKLOAD as HAWKNL
from .listing1 import WORKLOAD as LISTING1
from .ls import LS1, LS2, LS3, LS4, ls_source
from .minidb import WORKLOAD as MINIDB

# Table 1's eight real bugs, in the paper's order.
TABLE1 = [MINIDB, HAWKNL, GHTTPD, PASTE, MKNOD, MKDIR, MKFIFO, TAC]

# Figure 2 adds the four ls variants (KC's feasible set) to the real bugs.
FIGURE2 = [LS1, LS2, LS3, LS4, GHTTPD, TAC, MKDIR, MKFIFO, MKNOD, PASTE,
           HAWKNL, MINIDB]

# ghttpd-hard is not part of the paper's evaluation set: it scales the
# ghttpd overflow behind a header-parsing plateau for the distributed-
# search benchmark, so it joins the registry but not TABLE1/FIGURE2.
ALL = {w.name: w for w in [LISTING1] + FIGURE2 + [GHTTPD_HARD]}


def get(name: str) -> Workload:
    return ALL[name]


__all__ = [
    "ALL",
    "FIGURE2",
    "GHTTPD",
    "GHTTPD_HARD",
    "HAWKNL",
    "LISTING1",
    "LS1",
    "LS2",
    "LS3",
    "LS4",
    "MINIDB",
    "MKDIR",
    "MKFIFO",
    "MKNOD",
    "PASTE",
    "TABLE1",
    "TAC",
    "Workload",
    "get",
    "ls_source",
]
