"""The evaluation workloads (paper Table 1 + the Figure 2 ls variants),
plus the real-Python programs compiled through ``repro.frontend``."""

from .base import Workload
from .coreutils import MKDIR, MKFIFO, MKNOD, PASTE, TAC
from .ghttpd import GHTTPD_HARD, WORKLOAD as GHTTPD
from .hawknl import WORKLOAD as HAWKNL
from .listing1 import WORKLOAD as LISTING1
from .ls import LS1, LS2, LS3, LS4, ls_source
from .minidb import WORKLOAD as MINIDB
from .pyprograms import PYLEDGER, PYRLOCK, PYTALLY, PYTHON_WORKLOADS

# Table 1's eight real bugs, in the paper's order.
TABLE1 = [MINIDB, HAWKNL, GHTTPD, PASTE, MKNOD, MKDIR, MKFIFO, TAC]

# Figure 2 adds the four ls variants (KC's feasible set) to the real bugs.
FIGURE2 = [LS1, LS2, LS3, LS4, GHTTPD, TAC, MKDIR, MKFIFO, MKNOD, PASTE,
           HAWKNL, MINIDB]

# ghttpd-hard is not part of the paper's evaluation set: it scales the
# ghttpd overflow behind a header-parsing plateau for the distributed-
# search benchmark, so it joins the registry but not TABLE1/FIGURE2.
# The Python workloads likewise join the registry only: they are the
# frontend's evaluation set, not the paper's.
ALL = {
    w.name: w
    for w in [LISTING1] + FIGURE2 + [GHTTPD_HARD] + PYTHON_WORKLOADS
}


def get(name: str) -> Workload:
    return ALL[name]


def register(workload: Workload, replace: bool = False) -> Workload:
    """Add a workload to the registry (corpus variants, plugins, tests).

    Registered programs are first-class: ``repro submit --workload``, the
    triage database, and every CLI verb resolve them through ``get``.
    """
    if workload.name in ALL and not replace:
        raise ValueError(f"workload {workload.name!r} already registered")
    ALL[workload.name] = workload
    return workload


__all__ = [
    "ALL",
    "FIGURE2",
    "GHTTPD",
    "GHTTPD_HARD",
    "HAWKNL",
    "LISTING1",
    "LS1",
    "LS2",
    "LS3",
    "LS4",
    "MINIDB",
    "MKDIR",
    "MKFIFO",
    "MKNOD",
    "PASTE",
    "PYLEDGER",
    "PYRLOCK",
    "PYTALLY",
    "PYTHON_WORKLOADS",
    "TABLE1",
    "TAC",
    "Workload",
    "get",
    "ls_source",
    "register",
]
