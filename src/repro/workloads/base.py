"""Workload framework: the evaluation programs and their bug reports.

Each workload bundles a MiniC program with a known bug, the concrete inputs
and (for concurrency bugs) the scripted schedule of the "end-user run" that
manifests it, and the machinery to produce the coredump ESD starts from.
The trigger is used exactly once, to generate the dump -- synthesis never
sees it, preserving the paper's zero-tracing premise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .. import ir
from ..baselines import Directive, ForcedSchedulePolicy
from ..coredump import BugReport, Coredump, coredump_from_state, corrupt_stack
from ..lang import compile_source
from ..symbex import BugKind, ConcreteEnv, ExecConfig, Executor, RecordedInputs

DirectiveFactory = Callable[[ir.Module], list[Directive]]


@dataclass
class Workload:
    name: str
    source: str
    bug_type: str  # 'crash' | 'deadlock' | 'race'
    expected_kind: BugKind
    description: str
    trigger_inputs: RecordedInputs = field(default_factory=RecordedInputs)
    directives: Optional[DirectiveFactory] = None
    corrupt_dump: bool = False  # the ghttpd scenario
    paper_seconds: Optional[float] = None  # Table 1's reported synthesis time
    lang: str = "esd"  # 'esd' (MiniC) | 'python' (repro.frontend)
    _module: Optional[ir.Module] = None

    def compile(self) -> ir.Module:
        if self._module is None:
            if self.lang == "python":
                from ..frontend import compile_python_source

                self._module = compile_python_source(self.source, self.name)
            else:
                self._module = compile_source(self.source, self.name)
        return self._module

    @property
    def kloc(self) -> float:
        return len(self.source.splitlines()) / 1000.0

    def trigger(self) -> tuple[ir.Module, "object"]:
        """Run the program once with the known trigger, returning the
        terminal bug state (the end-user's unlucky execution)."""
        module = self.compile()
        policy = (
            ForcedSchedulePolicy(self.directives(module))
            if self.directives is not None else None
        )
        executor = Executor(
            module,
            env=ConcreteEnv(self.trigger_inputs),
            policy=policy,
            config=ExecConfig(),
        )
        state = executor.run_to_completion(executor.initial_state())
        if state.status != "bug" or state.bug is None:
            raise RuntimeError(
                f"workload {self.name}: trigger did not manifest the bug "
                f"(status {state.status})"
            )
        if state.bug.kind is not self.expected_kind:
            raise RuntimeError(
                f"workload {self.name}: trigger produced {state.bug.kind}, "
                f"expected {self.expected_kind}"
            )
        return module, state

    def make_coredump(self) -> Coredump:
        module, state = self.trigger()
        dump = coredump_from_state(module, state)
        if self.corrupt_dump:
            dump = corrupt_stack(dump)
        return dump

    def make_report(self) -> BugReport:
        return BugReport(
            self.make_coredump(),
            self.bug_type,
            description=self.description,
        )
