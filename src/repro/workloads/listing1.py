"""The paper's running example (Listing 1): a two-thread deadlock that
manifests only when ``getchar() == 'm'``, ``getenv("mode")[0] == 'Y'``, and
one thread is preempted right after the unlock on line 11."""

from __future__ import annotations

from .. import ir
from ..baselines import Directive
from ..symbex import BugKind, RecordedInputs
from .base import Workload

SOURCE = """
int idx = 0;
int mode = 0;
mutex M1;
mutex M2;

void critical_section(int unused) {
    lock(M1);
    lock(M2);
    if (mode == 1 && idx == 1) {
        unlock(M1);
        lock(M1);
    }
    unlock(M2);
    unlock(M1);
}

int main() {
    if (getchar() == 'm') {
        idx = idx + 1;
    }
    int *env = getenv("mode");
    if (env[0] == 'Y') {
        mode = 1;
    } else {
        mode = 2;
    }
    int t1 = spawn(critical_section, 0);
    int t2 = spawn(critical_section, 0);
    join(t1);
    join(t2);
    return 0;
}
"""


def _directives(module: ir.Module) -> list[Directive]:
    """The paper's interleaving: thread 1 runs to line 11 (the unlock inside
    the if) and is preempted right after it; thread 2 runs up to line 9 and
    blocks; thread 1 resumes and blocks on line 12."""
    unlocks = [
        ref for ref, instr in module.functions["critical_section"].iter_instructions()
        if isinstance(instr, ir.MutexUnlock)
    ]
    # The unlock inside the if-block (line 11) is the first unlock
    # lexically: blocks are emitted in source order (if.then before if.end).
    line11 = min(unlocks, key=lambda ref: module.instruction(ref).line)
    return [Directive(line11, 1, 2)]


WORKLOAD = Workload(
    name="listing1",
    source=SOURCE,
    bug_type="deadlock",
    expected_kind=BugKind.DEADLOCK,
    description="hang: the paper's Listing 1 deadlock (requires 'm' on stdin, "
    "mode=Y in the environment, and a precise preemption)",
    trigger_inputs=RecordedInputs(stdin=[ord("m")], env={"mode": "Y"}),
    directives=_directives,
)
