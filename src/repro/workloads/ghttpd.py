"""ghttpd: a small web server with a buffer overflow in its log function.

Stands in for the ghttpd GET-request vulnerability (paper section 7.1): "a
buffer overflow when processing the URL for GET requests.  The overflow
occurs in the vsprintf function when the request is written to the log."
Here the overflow is in ``log_request``'s manual copy of the URL into a
fixed-size log line.

The paper notes ghttpd's coredump "contained a corrupt call stack"; this
workload marks its dump corrupted, and goal extraction repairs it via the
call graph (``coredump.repair_stack``).
"""

from __future__ import annotations

from ..symbex import BugKind, RecordedInputs
from .base import Workload

SOURCE = """
// mini ghttpd: parse a GET request, serve it, log it

int logbuf[24];
int loglen = 0;
int served = 0;
int status = 0;

int is_space(int c) {
    if (c == ' ') { return 1; }
    if (c == 9) { return 1; }
    return 0;
}

void log_request(int *url) {
    // "GET <url>" into the fixed-size log line
    logbuf[0] = 'G';
    logbuf[1] = 'E';
    logbuf[2] = 'T';
    logbuf[3] = ' ';
    int pos = 4;
    int i = 0;
    while (url[i] != 0) {
        // BUG: no bound check against the 24-cell log buffer (the paper's
        // vsprintf overflow): a long URL writes past the end.
        logbuf[pos + i] = url[i];
        i = i + 1;
    }
    logbuf[pos + i] = 0;
    loglen = pos + i;
}

int send_response(int code) {
    status = code;
    served = served + 1;
    return code;
}

int serveconnection(int *request) {
    // method must be "GET "
    if (request[0] != 'G') { return send_response(400); }
    if (request[1] != 'E') { return send_response(400); }
    if (request[2] != 'T') { return send_response(400); }
    if (request[3] != ' ') { return send_response(400); }

    // extract the URL (up to whitespace or end of request)
    int url[40];
    int i = 0;
    while (i < 36) {
        int c = request[4 + i];
        if (c == 0) { break; }
        if (is_space(c)) { break; }
        url[i] = c;
        i = i + 1;
    }
    url[i] = 0;
    if (i == 0) { return send_response(400); }

    log_request(url);
    return send_response(200);
}

int main() {
    int *request = read_input("request", 40);
    int code = serveconnection(request);
    if (code == 200) { return 0; }
    return 1;
}
"""

# Trigger: a GET with a URL long enough (>= 20 chars) to overflow logbuf.
_LONG_URL = "GET /" + "A" * 30
WORKLOAD = Workload(
    name="ghttpd",
    source=SOURCE,
    bug_type="crash",
    expected_kind=BugKind.OUT_OF_BOUNDS,
    description="crash: buffer overflow in the request-logging function "
    "(ghttpd GET vulnerability); coredump arrives with a corrupt stack",
    trigger_inputs=RecordedInputs(
        buffers={"request": [ord(c) for c in _LONG_URL]}
    ),
    corrupt_dump=True,
    paper_seconds=7.0,
)


# -- ghttpd-hard: the same overflow behind a header-parsing plateau ----------
#
# The plain ghttpd search is almost a straight proximity descent (~70
# states), so there is nothing for a parallel frontier to shard.  The hard
# variant prefixes the request with a run of classified header characters:
# every header byte forks the state over the classifier's alternatives while
# the proximity distance barely changes -- a *distance plateau* that the
# guided search must sweep breadth-first.  Logging (where the overflow
# lives) is only enabled when some header classified as 'l', so the goal
# still constrains the plateau.  This is the distributed-search benchmark
# workload: big frontier, same bug.

_HARD_HEADERS = 8

_HARD_SOURCE_TEMPLATE = """
// ghttpd-hard: header parsing creates a distance plateau before the
// overflowing log write.
int logbuf[24];
int loglen = 0;
int served = 0;
int status = 0;
int headers[%(nh)d];
int log_enabled = 0;

int is_space(int c) {
    if (c == ' ') { return 1; }
    if (c == 9) { return 1; }
    return 0;
}

int classify(int c) {
    if (c == 'a') { return 1; }
    if (c == 'c') { return 2; }
    if (c == 'k') { return 3; }
    if (c == 'l') { return 4; }
    if (c == 'u') { return 5; }
    return 0;
}

int parse_headers(int *request) {
    int i = 0;
    while (i < %(nh)d) {
        int kind = classify(request[i]);
        headers[i] = kind;
        if (kind == 4) { log_enabled = 1; }
        i = i + 1;
    }
    return i;
}

void log_request(int *url) {
    logbuf[0] = 'G';
    logbuf[1] = ' ';
    int pos = 2;
    int i = 0;
    while (url[i] != 0) {
        // BUG: no bound check against the 24-cell log buffer.
        logbuf[pos + i] = url[i];
        i = i + 1;
    }
    logbuf[pos + i] = 0;
    loglen = pos + i;
}

int send_response(int code) {
    status = code;
    served = served + 1;
    return code;
}

int serveconnection(int *request) {
    int nh = parse_headers(request);
    if (request[nh] != 'G') { return send_response(400); }
    if (request[nh + 1] != ' ') { return send_response(400); }
    int url[40];
    int i = 0;
    while (i < 36) {
        int c = request[nh + 2 + i];
        if (c == 0) { break; }
        if (is_space(c)) { break; }
        url[i] = c;
        i = i + 1;
    }
    url[i] = 0;
    if (i == 0) { return send_response(400); }
    if (log_enabled == 1) { log_request(url); }
    return send_response(200);
}

int main() {
    int *request = read_input("req", 64);
    int code = serveconnection(request);
    if (code == 200) { return 0; }
    return 1;
}
"""


def hard_workload(headers: int = _HARD_HEADERS) -> Workload:
    """Build a ghttpd-hard variant with a ``headers``-deep plateau (each
    extra header roughly doubles the frontier the search must sweep)."""
    trigger = "l" * headers + "G " + "/" + "A" * 25
    return Workload(
        name="ghttpd-hard" if headers == _HARD_HEADERS
        else f"ghttpd-hard{headers}",
        source=_HARD_SOURCE_TEMPLATE % {"nh": headers},
        bug_type="crash",
        expected_kind=BugKind.OUT_OF_BOUNDS,
        description="crash: the ghttpd log overflow behind a header-parsing "
        "plateau (distributed-search benchmark workload)",
        trigger_inputs=RecordedInputs(
            buffers={"req": [ord(c) for c in trigger]}
        ),
    )


GHTTPD_HARD = hard_workload()
