"""Real-Python workloads, compiled through ``repro.frontend``.

Three actual Python programs with seeded bugs, exercising the three bug
shapes the pipeline handles end to end: an out-of-bounds read behind an
off-by-one comparison, an assertion failure behind an unguarded constant,
and a lock-order deadlock in a hand-rolled recursive lock (the SQLite
#1672 shape from ``minidb``, now in Python ``threading``).

Each program also ships its *fixed* source (``*_FIXED``): the mutation
corpus (``repro.corpus``) starts from the correct program and re-seeds
bugs mechanically, so ground truth is known by construction.  The buggy
sources here stay hand-written because their trigger inputs and repair
ground truth are part of the evaluation contract.
"""

from __future__ import annotations

from .. import ir
from ..baselines import Directive
from ..symbex import BugKind, RecordedInputs
from .base import Workload

# ---------------------------------------------------------------------------
# pytally: off-by-one bound -> out-of-bounds list read (IndexError).
# ---------------------------------------------------------------------------

PYTALLY_SOURCE = '''\
"""pytally: sum a fixed report window from a metrics ring."""
import os

ITEMS = [3, 1, 4, 1, 5, 9, 2, 6]


def total(upto):
    s = 0
    i = 0
    while i <= upto:
        s = s + ITEMS[i]
        i = i + 1
    return s


def main():
    mode = os.getenv("MODE")
    limit = 4
    if mode[0] == 'A':
        limit = len(ITEMS)
    return total(limit)


if __name__ == "__main__":
    main()
'''

# The fix: the window bound is exclusive.
PYTALLY_FIXED = PYTALLY_SOURCE.replace("while i <= upto:", "while i < upto:")

PYTALLY = Workload(
    name="pytally",
    source=PYTALLY_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.OUT_OF_BOUNDS,
    description="IndexError: off-by-one window bound reads past the ring",
    trigger_inputs=RecordedInputs(env={"MODE": "A"}),
    lang="python",
)

# ---------------------------------------------------------------------------
# pyledger: unguarded fee escalation -> failed balance assertion.
# ---------------------------------------------------------------------------

PYLEDGER_SOURCE = '''\
"""pyledger: toy double-entry ledger with a non-negative balance invariant."""
import os

BALANCE = [100, 50]
FEES_PAID = 0


def apply_fee(acct, fee):
    global FEES_PAID
    BALANCE[acct] = BALANCE[acct] - fee
    FEES_PAID = FEES_PAID + fee
    return BALANCE[acct]


def main():
    mode = os.getenv("PLAN")
    fee = 2
    if mode[0] == 'H':
        fee = 60
    apply_fee(0, fee)
    apply_fee(1, fee)
    assert BALANCE[1] >= 0
    return FEES_PAID


if __name__ == "__main__":
    main()
'''

# The fix: the premium plan fee must not exceed the smallest balance.
PYLEDGER_FIXED = PYLEDGER_SOURCE.replace("fee = 60", "fee = 40")

PYLEDGER = Workload(
    name="pyledger",
    source=PYLEDGER_SOURCE,
    bug_type="crash",
    expected_kind=BugKind.ASSERT_FAIL,
    description="AssertionError: premium fee drives a balance negative",
    trigger_inputs=RecordedInputs(env={"PLAN": "H"}),
    lang="python",
)

# ---------------------------------------------------------------------------
# pyrlock: hand-rolled recursive lock, acquires the real lock while still
# holding the bookkeeping mutex (SQLite #1672 analogue, in Python).
# ---------------------------------------------------------------------------

PYRLOCK_SOURCE = '''\
"""pyrlock: recursive lock built from two threading.Locks."""
import threading

master = threading.Lock()
real = threading.Lock()
OWNER = -1
COUNT = 0
TOTAL = 0
SEEN = 0


def rl_enter(tid):
    global OWNER, COUNT
    master.acquire()
    if OWNER == tid:
        COUNT = COUNT + 1
        master.release()
        return 0
    real.acquire()
    OWNER = tid
    COUNT = 1
    master.release()
    return 0


def rl_leave(tid):
    global OWNER, COUNT
    master.acquire()
    COUNT = COUNT - 1
    if COUNT == 0:
        OWNER = -1
        real.release()
    master.release()
    return 0


def writer(tid):
    global TOTAL
    rl_enter(tid)
    i = 0
    while i < 2:
        rl_enter(tid)
        TOTAL = TOTAL + i
        rl_leave(tid)
        i = i + 1
    rl_leave(tid)
    return 0


def reader(tid):
    global SEEN
    rl_enter(tid)
    SEEN = SEEN + TOTAL
    rl_leave(tid)
    return 0


def main():
    t1 = threading.Thread(target=writer, args=(1,))
    t2 = threading.Thread(target=reader, args=(2,))
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    return TOTAL


if __name__ == "__main__":
    main()
'''

# The fix: release the bookkeeping mutex before blocking on the real lock
# (the unlock-hoist repair template's target shape).
PYRLOCK_FIXED = PYRLOCK_SOURCE.replace(
    """    real.acquire()
    OWNER = tid
    COUNT = 1
    master.release()""",
    """    master.release()
    real.acquire()
    OWNER = tid
    COUNT = 1""",
)


def _pyrlock_directives(module: ir.Module) -> list[Directive]:
    """The end-user's unlucky schedule, exactly minidb's: preempt the writer
    to the reader right after its transaction-opening rl_enter releases the
    bookkeeping mutex.  The reader then holds master and blocks on real; the
    writer later blocks on master inside rl_leave."""
    unlocks = [
        ref for ref, instr in module.functions["rl_enter"].iter_instructions()
        if isinstance(instr, ir.MutexUnlock)
    ]
    # The acquire-path unlock is the last unlock in rl_enter.
    return [Directive(unlocks[-1], 1, 2)]


PYRLOCK = Workload(
    name="pyrlock",
    source=PYRLOCK_SOURCE,
    bug_type="deadlock",
    expected_kind=BugKind.DEADLOCK,
    description="hang: recursive lock acquires real while holding master",
    directives=_pyrlock_directives,
    lang="python",
)

PYTHON_WORKLOADS = [PYTALLY, PYLEDGER, PYRLOCK]

# (buggy workload, fixed source) pairs: the corpus mutates the fixed ones.
FIXED_SOURCES = {
    "pytally": PYTALLY_FIXED,
    "pyledger": PYLEDGER_FIXED,
    "pyrlock": PYRLOCK_FIXED,
}
