"""Brute-force baselines: stress testing and random input testing (§7.2).

"The first approach to reproduce the bugs is brute force trial-and-error ...
several series of stress tests and random input testing for several hours.
Neither of these efforts caused any of the bugs to manifest."

A stress run executes the program concretely with random inputs and a random
schedule; the tester repeats runs until a bug (optionally a specific goal)
manifests or the budget is exhausted.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .. import ir
from ..symbex import ExecConfig, Executor
from ..symbex.env import InputProvider
from ..symbex.memory import Pointer
from ..symbex.state import ExecutionState
from .schedules import RandomSchedulePolicy

_PRINTABLE = [0] + list(range(32, 127))


class RandomEnv(InputProvider):
    """Concrete random inputs: random stdin bytes, random short strings for
    env vars and argv, random buffer contents."""

    def __init__(self, rng: random.Random, max_string: int = 6) -> None:
        self._rng = rng
        self.max_string = max_string

    def getchar(self, state: ExecutionState):
        return self._rng.choice(_PRINTABLE)

    def _random_string_obj(self, state: ExecutionState, label: str) -> Pointer:
        length = self._rng.randrange(self.max_string + 1)
        cells: list = [self._rng.randrange(32, 127) for _ in range(length)] + [0]
        obj = state.new_object(len(cells), "heap", label, init=cells)
        return Pointer(obj.obj_id, 0)

    def getenv(self, state: ExecutionState, name: str) -> Pointer:
        cached = state.env.env_buffers.get(name)
        if cached is None:
            cached = self._random_string_obj(state, f"env.{name}")
            state.env.env_buffers[name] = cached
        return cached

    def argc(self, state: ExecutionState):
        if state.env.argc_var is None:
            state.env.argc_var = self._rng.randint(1, 4)
        return state.env.argc_var

    def arg(self, state: ExecutionState, index: int) -> Pointer:
        cached = state.env.arg_buffers.get(index)
        if cached is None:
            cached = self._random_string_obj(state, f"arg{index}")
            state.env.arg_buffers[index] = cached
        return cached

    def read_input(self, state: ExecutionState, name: str, size: int) -> Pointer:
        cached = state.env.buffers.get(name)
        if cached is None:
            cells: list = [self._rng.randrange(256) for _ in range(size)]
            obj = state.new_object(size, "heap", f"buf.{name}", init=cells)
            cached = Pointer(obj.obj_id, 0)
            state.env.buffers[name] = cached
        return cached


@dataclass(slots=True)
class StressResult:
    found: bool
    runs: int
    seconds: float
    bug_kinds_seen: dict[str, int] = field(default_factory=dict)
    matching_state: Optional[ExecutionState] = None


def stress_test(
    module: ir.Module,
    is_goal: Optional[Callable[[ExecutionState], bool]] = None,
    max_runs: int = 10_000,
    max_seconds: float = 60.0,
    seed: int = 0,
    max_steps_per_run: int = 200_000,
    preempt_probability: float = 0.1,
) -> StressResult:
    """Hammer the program with random inputs and schedules.

    ``preempt_probability`` is the chance of a context switch at each sync
    point; the default is deliberately modest, reflecting how rarely a real
    OS scheduler preempts at exactly a lock boundary.
    """
    rng = random.Random(seed)
    deadline = time.monotonic() + max_seconds
    started = time.monotonic()
    kinds: dict[str, int] = {}
    for run in range(max_runs):
        if time.monotonic() > deadline:
            break
        executor = Executor(
            module,
            env=RandomEnv(random.Random(rng.randrange(2**31))),
            policy=RandomSchedulePolicy(
                seed=rng.randrange(2**31),
                preempt_probability=preempt_probability,
            ),
            config=ExecConfig(max_steps_per_state=max_steps_per_run),
        )
        try:
            state = executor.run_to_completion(
                executor.initial_state(), max_steps=max_steps_per_run
            )
        except RuntimeError:
            continue  # stuck run: counts as no manifestation
        if state.status == "bug" and state.bug is not None:
            kinds[state.bug.kind.value] = kinds.get(state.bug.kind.value, 0) + 1
            if is_goal is None or is_goal(state):
                return StressResult(
                    True, run + 1, time.monotonic() - started, kinds, state
                )
    return StressResult(False, run + 1 if max_runs else 0,
                        time.monotonic() - started, kinds, None)
