"""Concrete scheduling policies for non-symbolic runs.

* :class:`ForcedSchedulePolicy` scripts an "unlucky end-user run": directives
  of the form *when thread T passes sync point R, switch to thread U*.  The
  workloads use it to manifest their known bugs once, producing the coredump
  that ESD starts from (ESD itself never sees the directives).
* :class:`RandomSchedulePolicy` drives the stress-testing baseline (paper
  section 7.2): random thread scheduling plus random preemptions at sync
  points, no forking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..ir import Instr, InstrRef
from ..symbex.policy import SchedulerPolicy
from ..symbex.state import AddrKey, ExecutionState


@dataclass(slots=True)
class Directive:
    """After ``from_tid`` executes the sync instruction at ``ref``, switch to
    ``to_tid``.  Directives fire in order, each at most once."""

    ref: InstrRef
    from_tid: int
    to_tid: int


class ForcedSchedulePolicy(SchedulerPolicy):
    """Deterministic scripted preemptions (for coredump generation)."""

    def __init__(self, directives: list[Directive]) -> None:
        self.directives = list(directives)
        self._next = 0

    def _maybe_switch(self, state: ExecutionState, ref: InstrRef) -> None:
        if self._next >= len(self.directives):
            return
        directive = self.directives[self._next]
        if directive.from_tid != state.current_tid or directive.ref != ref:
            return
        target = state.threads.get(directive.to_tid)
        if target is not None and target.status == "runnable":
            self._next += 1
            state.switch_to(directive.to_tid)

    def after_acquire(self, executor, state, key, instr, ref):
        self._maybe_switch(state, ref)
        return []

    def on_release(self, executor, state, key, instr, ref):
        self._maybe_switch(state, ref)

    def on_thread_event(self, executor, state, kind, tid, instr):
        if kind in ("create", "signal", "broadcast"):
            self._maybe_switch(state, state.pc)
        return []

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.directives)


class RandomSchedulePolicy(SchedulerPolicy):
    """Random scheduling for stress testing: at every preemption opportunity
    flip a coin and maybe run someone else."""

    def __init__(self, seed: int = 0, preempt_probability: float = 0.5) -> None:
        self._rng = random.Random(seed)
        self.preempt_probability = preempt_probability

    def pick_next(self, state: ExecutionState) -> Optional[int]:
        runnable = state.runnable_tids()
        if not runnable:
            return None
        return self._rng.choice(runnable)

    def _maybe_preempt(self, state: ExecutionState) -> None:
        others = [t for t in state.runnable_tids() if t != state.current_tid]
        if others and self._rng.random() < self.preempt_probability:
            state.switch_to(self._rng.choice(others))

    def after_acquire(self, executor, state, key, instr, ref):
        self._maybe_preempt(state)
        return []

    def on_release(self, executor, state, key, instr, ref):
        self._maybe_preempt(state)

    def on_thread_event(self, executor, state, kind, tid, instr):
        self._maybe_preempt(state)
        return []
