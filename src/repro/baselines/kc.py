"""KC: the Klee+Chess hybrid baseline (paper section 7.2).

"We extended Klee with support for multi-threading and implemented Chess's
preemption-bounding approach ... We compare ESD to two different KC search
strategies inherited directly from Klee: DFS, which can be thought of as
equivalent to an exhaustive search, and RandomPath, a quasi-random strategy
meant to maximize global path coverage.  We augmented the corresponding
strategies to encompass all active threads and limit preemptions to two."

KC shares ESD's executor and engine; what changes is (a) the state-selection
strategy (DFS / RandomPath instead of proximity-guided queues) and (b) the
scheduling policy (Chess's iterative-context-bounding forks instead of the
goal-directed snapshot strategy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .. import ir
from ..search import (
    DFSSearcher,
    RandomPathSearcher,
    SearchBudget,
    SearchOutcome,
    Searcher,
    explore,
)
from ..symbex import ExecConfig, Executor, SymbolicEnv
from ..symbex.policy import SchedulerPolicy
from ..symbex.state import ExecutionState

DEFAULT_PREEMPTION_BOUND = 2


class ChessPreemptionPolicy(SchedulerPolicy):
    """Fork alternative schedules at synchronization points, bounding the
    number of *preemptions* (forced switches of a runnable thread) per
    execution, as in Chess's iterative context bounding."""

    def __init__(self, preemption_bound: int = DEFAULT_PREEMPTION_BOUND) -> None:
        self.preemption_bound = preemption_bound

    def _fork_schedules(
        self, executor: Executor, state: ExecutionState,
        before_instruction: bool = True,
    ) -> list[ExecutionState]:
        used = int(state.meta.get("kc_preemptions", 0))  # type: ignore[arg-type]
        if used >= self.preemption_bound:
            return []
        forks = []
        for tid in state.runnable_tids():
            if tid == state.current_tid:
                continue
            fork = state.fork()
            executor.stats.states_created += 1
            if before_instruction:
                fork.uncount_instruction()
            fork.meta["kc_preemptions"] = used + 1
            fork.switch_to(tid)
            forks.append(fork)
        return forks

    def fork_before_acquire(self, executor, state, key, instr, ref):
        return self._fork_schedules(executor, state)

    def fork_before_release(self, executor, state, key, instr, ref):
        return self._fork_schedules(executor, state)

    def on_thread_event(self, executor, state, kind, tid, instr):
        return self._fork_schedules(executor, state, before_instruction=False)


@dataclass(slots=True)
class KCResult:
    outcome: SearchOutcome
    strategy: str

    @property
    def found(self) -> bool:
        return self.outcome.found


def kc_find_path(
    module: ir.Module,
    is_goal: Callable[[ExecutionState], bool],
    strategy: str = "dfs",
    budget: Optional[SearchBudget] = None,
    preemption_bound: int = DEFAULT_PREEMPTION_BOUND,
    seed: int = 0,
    string_size: int = 8,
) -> KCResult:
    """Search for a path to ``is_goal`` the way KC would."""
    searcher: Searcher
    if strategy == "dfs":
        searcher = DFSSearcher()
    elif strategy == "random-path":
        searcher = RandomPathSearcher(seed=seed)
    else:
        raise ValueError(f"unknown KC strategy {strategy!r}")
    policy = ChessPreemptionPolicy(preemption_bound)
    executor = Executor(
        module,
        env=SymbolicEnv(string_size=string_size),
        policy=policy,
        config=ExecConfig(string_size=string_size),
    )
    outcome = explore(
        executor, searcher, executor.initial_state(), is_goal,
        budget or SearchBudget(),
    )
    return KCResult(outcome, strategy)
