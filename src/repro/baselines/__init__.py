"""Comparison systems: KC (Klee+Chess), stress testing, scripted schedules."""

from .kc import DEFAULT_PREEMPTION_BOUND, ChessPreemptionPolicy, KCResult, kc_find_path
from .schedules import Directive, ForcedSchedulePolicy, RandomSchedulePolicy
from .stress import RandomEnv, StressResult, stress_test

__all__ = [
    "ChessPreemptionPolicy",
    "DEFAULT_PREEMPTION_BOUND",
    "Directive",
    "ForcedSchedulePolicy",
    "KCResult",
    "RandomEnv",
    "RandomSchedulePolicy",
    "StressResult",
    "kc_find_path",
    "stress_test",
]
