"""Explain a search from its flight log: why the goal path won, where
the budget went, and why two runs differ.

Consumes ``esd-searchlog-v1`` documents (:mod:`repro.obs.flight`) and
answers the three questions a search log exists for:

* **Decision chain** -- reconstruct the goal state's lineage (root to
  goal) and, for every ancestor, the picks that advanced it: which
  virtual queue selected it, at what combined proximity score, and what
  each selection cost in instructions and solver queries.  This is the
  paper's proximity-guidance story told on a concrete run.
* **Budget attribution** -- aggregate spend per function (from pick
  records) and per subsystem (from termination/kill tags: weakest-
  precondition kills, solver-refuted paths, the step limit, distance-INF
  abandonment, scheduler dead ends), so "where did my 2M instructions
  go" has a one-screen answer.
* **Diff** -- compare two logs of the same (or a changed) workload and
  rank what moved: picks, explored states, per-reason terminations,
  per-function spend.  "Why did this run explore 3x the states" becomes
  a sorted table instead of a guess.

Everything here is a pure function of the document; nothing imports the
executor or searcher, so logs from old runs stay explainable.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .flight import KILL_SUBSYSTEM, check_flight_document

__all__ = [
    "explain_flight",
    "diff_flights",
    "render_explain",
    "render_diff",
]

Num = Union[int, float]


def _subsystem(reason: str, why: str) -> str:
    """Fold a termination (reason, killing layer) into a subsystem name."""
    if why:
        return KILL_SUBSYSTEM.get(why, why)
    if reason == "infeasible":
        # No layer labelled the kill: a feasibility probe refuted the path.
        return KILL_SUBSYSTEM["path-constraint"]
    if reason == "exited":
        return "completed"
    return reason  # 'goal' | 'bug'


def explain_flight(doc: dict[str, Any]) -> dict[str, Any]:
    """Structured explanation of one flight log.

    Returns a report dict with ``outcome``, ``attribution`` (the fraction
    of explored states covered by a recorded pick/termination/lineage
    record -- the >= 0.95 acceptance gate), ``states`` (how explored
    states ended), ``subsystems``, ``functions`` (budget spend), and
    ``goal_path`` (the decision chain, root first; empty when the run
    found no goal).
    """
    check_flight_document(doc)
    counts = doc.get("counts", {})
    totals = doc.get("totals", {})
    records = doc.get("records", [])

    parent: dict[int, int] = {}
    picks_by_sid: dict[int, list[dict[str, Any]]] = {}
    end_by_sid: dict[int, dict[str, Any]] = {}
    seen: set[int] = set()
    goal_sid: Optional[int] = None
    functions: dict[str, dict[str, Num]] = {}
    subsystems: dict[str, int] = {}

    for record in records:
        kind = record.get("k")
        sid = record.get("sid")
        if isinstance(sid, int):
            seen.add(sid)
        if kind == "pick":
            picks_by_sid.setdefault(record["sid"], []).append(record)
            fn = str(record.get("fn", "") or "?")
            spend = functions.setdefault(
                fn, {"picks": 0, "instructions": 0,
                     "solver_queries": 0, "static_answers": 0})
            spend["picks"] += 1
            spend["instructions"] += record.get("in", 0)
            spend["solver_queries"] += record.get("sq", 0)
            spend["static_answers"] += record.get("sa", 0)
        elif kind in ("add", "drop", "end"):
            parent[record["sid"]] = record.get("parent", 0)
            if kind == "end":
                end_by_sid[record["sid"]] = record
                reason = str(record.get("reason", ""))
                sub = _subsystem(reason, str(record.get("why", "")))
                subsystems[sub] = subsystems.get(sub, 0) + 1
                if reason == "goal":
                    goal_sid = record["sid"]
            elif kind == "drop":
                sub = _subsystem("", str(record.get("why", "distance-inf")))
                subsystems[sub] = subsystems.get(sub, 0) + 1

    # Attribution: every explored state should appear in some record.
    # The denominator prefers the engine's own count (exact even when the
    # buffer dropped records); with a complete log the ratio is 1.0.
    explored = totals.get("states_explored")
    if not isinstance(explored, int) or explored <= 0:
        explored = len(seen)
    attributed = len(seen)
    attribution = min(1.0, attributed / explored) if explored else 1.0

    ended = sum(counts.get("ends", {}).values())
    pending = max(0, counts.get("adds", 0) - ended)

    goal_path: list[dict[str, Any]] = []
    if goal_sid is not None:
        chain: list[int] = []
        sid = goal_sid
        hops = 0
        while sid and hops < 1_000_000:
            chain.append(sid)
            sid = parent.get(sid, 0)
            hops += 1
        chain.reverse()
        for sid in chain:
            picks = picks_by_sid.get(sid, [])
            step: dict[str, Any] = {
                "sid": sid,
                "picks": len(picks),
                "instructions": sum(p.get("in", 0) for p in picks),
                "solver_queries": sum(p.get("sq", 0) for p in picks),
            }
            if picks:
                step["queue"] = picks[0].get("q", -1)
                step["first_score"] = picks[0].get("score", 0.0)
                step["last_score"] = picks[-1].get("score", 0.0)
                step["function"] = picks[-1].get("fn", "")
            end = end_by_sid.get(sid)
            if end is not None:
                step["reason"] = end.get("reason", "")
                if end.get("why"):
                    step["why"] = end["why"]
            goal_path.append(step)

    spend_rows = sorted(
        ({"function": fn, **{k: v for k, v in row.items()}}
         for fn, row in functions.items()),
        key=lambda r: (-int(r["instructions"]), str(r["function"])),
    )

    return {
        "outcome": counts.get("reason", "") or doc.get("meta", {}).get("reason", ""),
        "picks": counts.get("picks", 0),
        "states_explored": explored,
        "attribution": round(attribution, 4),
        "states": {
            "ends": dict(counts.get("ends", {})),
            "kills": dict(counts.get("kills", {})),
            "pending": pending,
            "dropped_records": counts.get("dropped", 0),
        },
        "subsystems": dict(sorted(subsystems.items(),
                                  key=lambda kv: (-kv[1], kv[0]))),
        "functions": spend_rows,
        "goal_path": goal_path,
        "totals": dict(totals),
    }


def _numeric_items(mapping: dict[str, Any]) -> dict[str, Num]:
    return {k: v for k, v in mapping.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def diff_flights(doc_a: dict[str, Any], doc_b: dict[str, Any]) -> dict[str, Any]:
    """Compare two flight logs; positive deltas mean B did more than A.

    Covers the headline counters (picks, states, terminations by reason,
    kills by layer), the whole-run totals, and per-function instruction
    spend ranked by absolute delta -- the "why did this run explore 3x
    the states" view.
    """
    rep_a = explain_flight(doc_a)
    rep_b = explain_flight(doc_b)

    def ratio(a: Num, b: Num) -> Optional[float]:
        return round(b / a, 4) if a else None

    headline: dict[str, Any] = {}
    for key in ("picks", "states_explored"):
        a, b = rep_a[key], rep_b[key]
        headline[key] = {"a": a, "b": b, "delta": b - a, "ratio": ratio(a, b)}

    def dict_delta(da: dict[str, Num], db: dict[str, Num]) -> dict[str, Any]:
        out = {}
        for key in sorted(set(da) | set(db)):
            a, b = da.get(key, 0), db.get(key, 0)
            out[key] = {"a": a, "b": b, "delta": b - a, "ratio": ratio(a, b)}
        return out

    ends = dict_delta(rep_a["states"]["ends"], rep_b["states"]["ends"])
    kills = dict_delta(rep_a["states"]["kills"], rep_b["states"]["kills"])
    totals = dict_delta(_numeric_items(rep_a["totals"]),
                        _numeric_items(rep_b["totals"]))

    spend_a = {r["function"]: r["instructions"] for r in rep_a["functions"]}
    spend_b = {r["function"]: r["instructions"] for r in rep_b["functions"]}
    functions = [
        {"function": fn, "a": spend_a.get(fn, 0), "b": spend_b.get(fn, 0),
         "delta": spend_b.get(fn, 0) - spend_a.get(fn, 0)}
        for fn in sorted(set(spend_a) | set(spend_b))
    ]
    functions.sort(key=lambda r: (-abs(int(r["delta"])), str(r["function"])))

    return {
        "outcome": {"a": rep_a["outcome"], "b": rep_b["outcome"]},
        "headline": headline,
        "ends": ends,
        "kills": kills,
        "totals": totals,
        "functions": functions,
    }


# ----------------------------------------------------------------------
# Human-readable rendering (the default `repro explain` output)

def render_explain(report: dict[str, Any], *, max_rows: int = 12) -> str:
    lines: list[str] = []
    lines.append(
        f"outcome: {report['outcome'] or '?'}  "
        f"picks: {report['picks']}  states: {report['states_explored']}  "
        f"attribution: {100 * report['attribution']:.1f}%"
    )
    states = report["states"]
    ends = ", ".join(f"{k}={v}" for k, v in sorted(states["ends"].items()))
    lines.append(f"terminations: {ends or 'none'}  pending: {states['pending']}")
    if states["kills"]:
        kills = ", ".join(f"{k}={v}" for k, v in sorted(states["kills"].items()))
        lines.append(f"kills: {kills}")
    if states["dropped_records"]:
        lines.append(f"note: {states['dropped_records']} records dropped "
                     f"(buffer bound); aggregates stay exact")
    if report["subsystems"]:
        lines.append("state fates by subsystem:")
        for name, count in report["subsystems"].items():
            lines.append(f"  {name:12s} {count}")
    if report["functions"]:
        lines.append("budget spend by function (instructions / solver queries):")
        for row in report["functions"][:max_rows]:
            lines.append(f"  {str(row['function']):24s} "
                         f"{int(row['instructions']):>10d} / "
                         f"{int(row['solver_queries']):>6d}  "
                         f"({int(row['picks'])} picks)")
        hidden = len(report["functions"]) - max_rows
        if hidden > 0:
            lines.append(f"  ... {hidden} more functions")
    if report["goal_path"]:
        lines.append(f"goal path decision chain ({len(report['goal_path'])} "
                     f"states, root first):")
        for step in report["goal_path"]:
            bits = [f"sid={step['sid']}"]
            if step.get("picks"):
                bits.append(f"picks={step['picks']}")
                bits.append(f"queue={step.get('queue', -1)}")
                bits.append(f"score={step.get('first_score', 0.0):.0f}"
                            f"->{step.get('last_score', 0.0):.0f}")
                bits.append(f"instr={step['instructions']}")
            if step.get("reason"):
                why = f" ({step['why']})" if step.get("why") else ""
                bits.append(f"end={step['reason']}{why}")
            lines.append("  " + "  ".join(bits))
    else:
        lines.append("goal path: none recorded (search did not reach the goal)")
    return "\n".join(lines)


def render_diff(diff: dict[str, Any], *, max_rows: int = 12) -> str:
    lines: list[str] = []
    out = diff["outcome"]
    lines.append(f"outcome: A={out['a'] or '?'}  B={out['b'] or '?'}")
    for key, row in diff["headline"].items():
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "n/a"
        lines.append(f"{key}: {row['a']} -> {row['b']} "
                     f"(delta {row['delta']:+d}, {ratio})")
    for section in ("ends", "kills"):
        rows = {k: v for k, v in diff[section].items() if v["delta"]}
        if rows:
            lines.append(f"{section} that moved:")
            for key, row in rows.items():
                lines.append(f"  {key:20s} {row['a']} -> {row['b']} "
                             f"({row['delta']:+d})")
    moved = [r for r in diff["functions"] if r["delta"]]
    if moved:
        lines.append("instruction spend by function (largest movers):")
        for row in moved[:max_rows]:
            lines.append(f"  {str(row['function']):24s} "
                         f"{int(row['a']):>10d} -> {int(row['b']):>10d} "
                         f"({int(row['delta']):+d})")
    if len(lines) == 1 + len(diff["headline"]):
        lines.append("no per-state differences recorded")
    return "\n".join(lines)
