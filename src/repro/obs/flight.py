"""Search flight recorder: one compact record per search decision.

PR 8's tracer answers *where the time went* (spans over phases and search
quanta); it cannot answer *why the search did what it did* -- why a state
was picked ahead of its siblings, which layer killed a path (weakest-
precondition refutation, the step limit, a solver-refuted branch, the
distance-INF abandonment in the searcher), or what each pick cost in
instructions and solver queries.  The :class:`FlightRecorder` captures
exactly that: the exploration loop appends one compact record per state
transition -- pick (queue, combined proximity score, current function,
instruction/solver-query deltas for the batch), enqueue (parent/child
lineage), drop (path abandonment), and termination (goal / bug / exited /
infeasible, with the killing layer when the executor named one) -- into a
bounded in-memory buffer.

Design rules, shared with :mod:`repro.obs.trace`:

* **Zero overhead when off.**  Callers hoist ``flight is not None and
  flight.enabled`` into a local boolean; the disabled search loop pays one
  boolean test per pick and the recorder allocates nothing.
* **Observation only.**  The recorder never adds constraints, never
  consumes RNG draws, and never mutates states, so a recorded synthesis
  produces byte-identical artifacts to an unrecorded one (pinned by
  tests and ``benchmarks/bench_obs.py``).
* **Bounded.**  At most ``max_records`` records are kept; overflow
  increments ``dropped`` while the aggregate counters (picks, ends by
  reason, kills by layer) stay exact, so :mod:`repro.obs.explain` can
  still attribute the search even from a truncated log.

The export is a versioned ``esd-searchlog-v1`` document, content-addressed
in the :class:`~repro.store.ArtifactStore` (kind ``"searchlog"``) next to
the job's trace, and consumed by ``repro explain``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Mapping, Optional

from ..schema import SchemaVersionError, check_schema_version

__all__ = [
    "FLIGHT_FORMAT",
    "FLIGHT_SCHEMA_VERSION",
    "DEFAULT_MAX_RECORDS",
    "KILL_SUBSYSTEM",
    "FlightRecorder",
    "check_flight_document",
    "load_flight",
]

FLIGHT_FORMAT = "esd-searchlog-v1"
FLIGHT_SCHEMA_VERSION = 1

# Generous for the pinned workloads (hundreds to low-thousands of picks)
# while bounding a runaway search to tens of MB of small dicts.
DEFAULT_MAX_RECORDS = 200_000

# Killing layer -> subsystem that paid for (or saved) the work.  The keys
# are the ``state.meta['killed']`` tags the executor writes plus the
# searcher-side abandonment reason; ``explain`` folds unlabelled
# infeasible ends into ``solver`` (a feasibility probe refuted the path).
KILL_SUBSYSTEM: dict[str, str] = {
    "wp-dead": "wp",
    "step-limit": "budget",
    "no-runnable-thread": "schedule",
    "distance-inf": "distance",
    "path-constraint": "solver",
}


class FlightRecorder:
    """Bounded append-only log of search decisions.

    Attach to the owners of a search the same way a tracer is attached
    (``executor.flight = recorder``; ``explore_frontier(...,
    flight=recorder)``).  All methods are no-ops when ``enabled`` is
    False, but hot callers should hoist the check instead of paying a
    method call per pick.
    """

    __slots__ = (
        "enabled", "max_records", "dropped", "high_water", "reason",
        "picks", "adds", "drops", "ends", "kills", "totals",
        "_records", "_lock",
    )

    def __init__(self, enabled: bool = True, *,
                 max_records: int = DEFAULT_MAX_RECORDS) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0          # records lost to the buffer bound
        self.high_water = 0       # max buffered records ever held
        self.reason = ""          # final search outcome, set by done()
        # Aggregate counters: exact even when the buffer overflows.
        self.picks = 0
        self.adds = 0
        self.drops = 0
        self.ends: dict[str, int] = {}   # termination reason -> count
        self.kills: dict[str, int] = {}  # killing layer -> count
        # Whole-run stats the recorder cannot observe itself; the search
        # owner fills these after the run (engine stats, solver counters).
        self.totals: dict[str, Any] = {}
        self._records: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording (engine/executor facing)

    def _append(self, record: dict[str, Any]) -> None:
        with self._lock:
            if len(self._records) < self.max_records:
                self._records.append(record)
                if len(self._records) > self.high_water:
                    self.high_water = len(self._records)
            else:
                self.dropped += 1

    def pick(self, sid: int, *, queue: int, score: float, strategy: str,
             function: str, instructions: int, solver_queries: int,
             static_answers: int) -> None:
        """One state selection plus what its batch cost.

        Recorded *after* the batch ran so the instruction and solver-query
        deltas are known; ``queue``/``score`` come from the searcher's
        account of why this state won (:meth:`Searcher.pick_info`).
        """
        if not self.enabled:
            return
        self.picks += 1
        record: dict[str, Any] = {
            "k": "pick", "sid": sid, "q": queue, "score": score,
            "fn": function, "in": instructions,
        }
        if strategy:
            record["strategy"] = strategy
        if solver_queries:
            record["sq"] = solver_queries
        if static_answers:
            record["sa"] = static_answers
        self._append(record)

    def add(self, sid: int, parent: int) -> None:
        """A successor state was enqueued (lineage edge parent -> child)."""
        if not self.enabled:
            return
        self.adds += 1
        self._append({"k": "add", "sid": sid, "parent": parent})

    def drop(self, sid: int, parent: int, why: str) -> None:
        """The searcher abandoned a successor instead of enqueueing it."""
        if not self.enabled:
            return
        self.drops += 1
        self.kills[why] = self.kills.get(why, 0) + 1
        self._append({"k": "drop", "sid": sid, "parent": parent, "why": why})

    def end(self, sid: int, parent: int, reason: str, *, why: str = "",
            function: str = "", line: int = 0) -> None:
        """A state terminated: ``reason`` is goal/bug/exited/infeasible,
        ``why`` names the killing layer when one labelled the state."""
        if not self.enabled:
            return
        self.ends[reason] = self.ends.get(reason, 0) + 1
        if why:
            self.kills[why] = self.kills.get(why, 0) + 1
        record: dict[str, Any] = {
            "k": "end", "sid": sid, "parent": parent, "reason": reason,
        }
        if why:
            record["why"] = why
        if function:
            record["fn"] = function
        if line:
            record["line"] = line
        self._append(record)

    def mark(self, name: str, detail: str = "") -> None:
        """An instantaneous annotation (e.g. the executor's bug marks)."""
        if not self.enabled:
            return
        record: dict[str, Any] = {"k": "mark", "name": name}
        if detail:
            record["detail"] = detail
        self._append(record)

    def done(self, reason: str) -> None:
        """The search returned; ``reason`` is the outcome reason."""
        if not self.enabled:
            return
        self.reason = reason
        self._append({"k": "done", "reason": reason})

    # ------------------------------------------------------------------
    # Reading

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def counts(self) -> dict[str, Any]:
        """Exact aggregate counters (valid even when the buffer dropped
        records); this is the flight summary the daemon streams."""
        with self._lock:
            buffered = len(self._records)
        return {
            "picks": self.picks,
            "adds": self.adds,
            "drops": self.drops,
            "ends": dict(sorted(self.ends.items())),
            "kills": dict(sorted(self.kills.items())),
            "records": buffered,
            "dropped": self.dropped,
            "high_water": self.high_water,
            "reason": self.reason,
        }

    def to_document(self, meta: Optional[Mapping[str, Any]] = None,
                    totals: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
        """Export as an ``esd-searchlog-v1`` document.

        ``totals`` carries whole-run stats the recorder cannot see itself
        (engine SearchStats, solver query counts, static-prune counters),
        merged over any :attr:`totals` the search owner already filled;
        ``explain`` uses them for subsystem attribution and the explored-
        state denominator.
        """
        merged = dict(self.totals)
        if totals:
            merged.update(totals)
        return {
            "format": FLIGHT_FORMAT,
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "meta": dict(meta) if meta else {},
            "counts": self.counts(),
            "totals": merged,
            "records": self.records(),
        }


def check_flight_document(data: dict[str, Any]) -> dict[str, Any]:
    """Validate the shape of an ``esd-searchlog-v1`` document, return it."""
    if data.get("format") != FLIGHT_FORMAT:
        raise SchemaVersionError(
            f"not a search flight log: format {data.get('format')!r} "
            f"(expected {FLIGHT_FORMAT!r})"
        )
    check_schema_version(data, FLIGHT_SCHEMA_VERSION, "search flight log")
    for key in ("counts", "records"):
        if key not in data:
            raise ValueError(f"search flight log: missing {key!r}")
    if not isinstance(data["records"], list):
        raise ValueError("search flight log: 'records' must be a list")
    for record in data["records"]:
        if not isinstance(record, dict) or "k" not in record:
            raise ValueError(f"search flight log: malformed record {record!r}")
    return data


def load_flight(path: str | Path) -> dict[str, Any]:
    """Read and validate a flight log from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return check_flight_document(json.load(fh))
