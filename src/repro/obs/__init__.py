"""Unified telemetry: tracing, metrics, flight recording, explanations.

The observability layer the rest of the pipeline reports into:

* :mod:`repro.obs.trace`   -- span tracer (session -> job -> phase ->
  search-quantum -> solver-query), ``esd-trace-v1`` documents, Chrome
  trace-event conversion, per-phase wall-clock attribution.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms, the
  ``esd-metrics-v1`` snapshot schema, Prometheus text rendering, and
  the monotonic-snapshot/delta discipline that replaced ad-hoc stat
  sampling in the benchmarks.
* :mod:`repro.obs.flight`  -- the search flight recorder: one compact
  record per state transition (pick score, lineage, termination/prune
  attribution, solver-query linkage), ``esd-searchlog-v1`` documents.
* :mod:`repro.obs.explain` -- turn a flight log into answers: the goal
  path's decision chain, budget spend per subsystem/function, and
  two-log diffs (``repro explain``).
* :mod:`repro.obs.history` -- durable per-host benchmark history with
  configurable regression gating (``repro bench --history``).

Zero third-party dependencies; importing this package pulls in nothing
beyond the stdlib and :mod:`repro.schema`.
"""

from .explain import diff_flights, explain_flight, render_diff, render_explain
from .flight import (
    FLIGHT_FORMAT,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    check_flight_document,
    load_flight,
)
from .history import append_entry, compare_latest, load_history, render_compare
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_FORMAT,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_metrics_document,
    counters_delta,
    unified_registry,
)
from .trace import (
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    check_trace_document,
    chrome_trace,
    load_trace,
    phase_summary,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "FLIGHT_FORMAT",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "Span",
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "append_entry",
    "check_flight_document",
    "check_metrics_document",
    "check_trace_document",
    "chrome_trace",
    "compare_latest",
    "counters_delta",
    "diff_flights",
    "explain_flight",
    "load_flight",
    "load_history",
    "load_trace",
    "phase_summary",
    "render_compare",
    "render_diff",
    "render_explain",
    "unified_registry",
]
