"""Unified telemetry: hierarchical tracing, metrics registry, exports.

The observability layer the rest of the pipeline reports into:

* :mod:`repro.obs.trace`   -- span tracer (session -> job -> phase ->
  search-quantum -> solver-query), ``esd-trace-v1`` documents, Chrome
  trace-event conversion, per-phase wall-clock attribution.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms, the
  ``esd-metrics-v1`` snapshot schema, Prometheus text rendering, and
  the monotonic-snapshot/delta discipline that replaced ad-hoc stat
  sampling in the benchmarks.

Zero third-party dependencies; importing this package pulls in nothing
beyond the stdlib and :mod:`repro.schema`.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_FORMAT,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_metrics_document,
    counters_delta,
    unified_registry,
)
from .trace import (
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    check_trace_document,
    chrome_trace,
    load_trace,
    phase_summary,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "Span",
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "check_metrics_document",
    "check_trace_document",
    "chrome_trace",
    "counters_delta",
    "load_trace",
    "phase_summary",
    "unified_registry",
]
