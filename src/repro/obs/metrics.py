"""Unified metrics registry: counters, gauges, histograms, one snapshot API.

Before this module, every benchmark and the service sampled the scattered
per-subsystem stats dataclasses (``SolverStats``, ``CacheStats``,
``StaticPruneStats``, ``ExecStats``, ...) directly -- each reader invented
its own field list, and readers that "reset" counters between samples
silently corrupted each other when a ``Solver`` was shared across batch or
portfolio runs.  The registry replaces all of that with three rules:

* **Counters are monotonic.**  Nothing ever zeroes a stat; interval
  readings are computed as the difference of two snapshots
  (:func:`counters_delta`), so concurrent readers cannot interfere.
* **One schema.**  :meth:`MetricsRegistry.snapshot` emits a versioned
  ``esd-metrics-v1`` document; ``repro bench --json``, the ``bench_*``
  scripts, and the service's ``/v1/metrics`` endpoint all emit exactly
  this shape.
* **Sampled sources.**  Existing stats dataclasses are not rewritten;
  :meth:`MetricsRegistry.bind_stats` registers a supplier callable and
  reads the dataclass fields at snapshot/scrape time (summing across
  instances when the supplier yields several, e.g. one solver per
  registered service program).

The registry also renders Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`) for the ``/metrics`` endpoint on
``repro serve``.  Zero dependencies; histograms use fixed bucket
boundaries chosen for solver-query and job latencies.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Iterable, Optional, Union

from ..schema import SchemaVersionError, check_schema_version

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_FORMAT",
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_TIME_BUCKETS",
    "check_metrics_document",
    "counters_delta",
    "unified_registry",
]

METRICS_FORMAT = "esd-metrics-v1"
METRICS_SCHEMA_VERSION = 1

# Fixed bucket boundaries (seconds) sized for both solver queries
# (typically 10us..10ms in this interpreter) and whole synthesis jobs
# (tens of ms to minutes).  Fixed so histograms are mergeable across
# runs and PRs.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing integer.  Never reset; read via snapshots."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_: str = "") -> None:
        self.name = name
        self.help = help_
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value, either set directly or sampled via callback."""

    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(self, name: str, help_: str = "",
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help_
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Cumulative-bucket histogram with fixed boundaries.

    ``counts[i]`` is the number of observations <= ``buckets[i]``;
    a final implicit +Inf bucket catches the rest.  ``observe`` is a
    linear scan -- bucket lists are short and observation sites are not
    the executor hot loop.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, help_: str = "",
                 buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        self.name = name
        self.help = help_
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            i = 0
            for bound in self.buckets:
                if value <= bound:
                    break
                i += 1
            self.counts[i] += 1
            self.sum += value
            self.count += 1


def _stat_fields(obj: Any) -> Iterable[tuple[str, Union[int, float]]]:
    """Numeric (name, value) pairs of a stats object.

    Dataclasses yield their int/float fields; plain dicts and objects
    with a ``to_dict`` yield the numeric entries of the dict.
    """
    if isinstance(obj, dict):
        for name, value in obj.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield name, value
        return
    if dataclasses.is_dataclass(obj):
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield f.name, value
        return
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        for name, value in to_dict().items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield name, value


class _BoundStats:
    """A supplier of stats objects sampled at snapshot/scrape time."""

    __slots__ = ("prefix", "help", "supplier")

    def __init__(self, prefix: str, supplier: Callable[[], Any],
                 help_: str = "") -> None:
        self.prefix = prefix
        self.help = help_
        self.supplier = supplier

    def sample(self) -> dict[str, Union[int, float]]:
        produced = self.supplier()
        if produced is None:
            return {}
        if (isinstance(produced, dict) or dataclasses.is_dataclass(produced)
                or hasattr(produced, "to_dict")):
            produced = [produced]
        totals: dict[str, Union[int, float]] = {}
        for obj in produced:
            if obj is None:
                continue
            for name, value in _stat_fields(obj):
                totals[name] = totals.get(name, 0) + value
        return totals


class MetricsRegistry:
    """Named metrics plus sampled stats sources, one snapshot surface."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._bound: list[_BoundStats] = []

    # ------------------------------------------------------------------
    # Registration (get-or-create; name collisions across types are errors)

    def _check_free(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(f"metric {name!r} already registered "
                                 f"with a different type")

    def counter(self, name: str, help_: str = "") -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, self._counters)
                metric = Counter(name, help_)
                self._counters[name] = metric
            return metric

    def gauge(self, name: str, help_: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, self._gauges)
                metric = Gauge(name, help_, fn=fn)
                self._gauges[name] = metric
            return metric

    def histogram(self, name: str, help_: str = "",
                  buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, self._histograms)
                metric = Histogram(name, help_, buckets=buckets)
                self._histograms[name] = metric
            return metric

    def bind_stats(self, prefix: str, supplier: Callable[[], Any],
                   help_: str = "") -> None:
        """Absorb a stats dataclass (or iterable of them) as counters.

        At snapshot time the supplier is called and each numeric field
        ``f`` becomes the counter ``{prefix}_{f}_total``, summed across
        the supplied instances.  The underlying dataclasses keep their
        cumulative semantics -- nothing is reset, ever.
        """
        with self._lock:
            self._bound.append(_BoundStats(prefix, supplier, help_))

    # ------------------------------------------------------------------
    # Reading

    def _sampled_counters(self) -> dict[str, tuple[Union[int, float], str]]:
        out: dict[str, tuple[Union[int, float], str]] = {}
        with self._lock:
            bound = list(self._bound)
        for b in bound:
            for field_name, value in b.sample().items():
                name = f"{b.prefix}_{field_name}_total"
                prev = out.get(name)
                out[name] = ((prev[0] if prev else 0) + value, b.help)
        return out

    def snapshot(self, meta: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """All current values as an ``esd-metrics-v1`` document."""
        metrics: dict[str, Any] = {}
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for c in counters:
            metrics[c.name] = {"type": "counter", "value": c.value}
        for name, (value, _help) in self._sampled_counters().items():
            metrics[name] = {"type": "counter", "value": value}
        for g in gauges:
            metrics[g.name] = {"type": "gauge", "value": g.value}
        for h in histograms:
            with h._lock:
                metrics[h.name] = {
                    "type": "histogram",
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
        return {
            "format": METRICS_FORMAT,
            "schema_version": METRICS_SCHEMA_VERSION,
            "meta": dict(meta) if meta else {},
            "metrics": {name: metrics[name] for name in sorted(metrics)},
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda m: m.name)
            gauges = sorted(self._gauges.values(), key=lambda m: m.name)
            histograms = sorted(self._histograms.values(), key=lambda m: m.name)
        for c in counters:
            if c.help:
                lines.append(f"# HELP {c.name} {c.help}")
            lines.append(f"# TYPE {c.name} counter")
            lines.append(f"{c.name} {c.value}")
        for name, (value, help_) in sorted(self._sampled_counters().items()):
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(value)}")
        for g in gauges:
            if g.help:
                lines.append(f"# HELP {g.name} {g.help}")
            lines.append(f"# TYPE {g.name} gauge")
            lines.append(f"{g.name} {_fmt(g.value)}")
        for h in histograms:
            if h.help:
                lines.append(f"# HELP {h.name} {h.help}")
            lines.append(f"# TYPE {h.name} histogram")
            with h._lock:
                counts = list(h.counts)
                total = h.count
                total_sum = h.sum
            cumulative = 0
            for bound, count in zip(h.buckets, counts):
                cumulative += count
                lines.append(f'{h.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            lines.append(f'{h.name}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{h.name}_sum {_fmt(total_sum)}")
            lines.append(f"{h.name}_count {total}")
        return "\n".join(lines) + "\n"


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def check_metrics_document(data: dict[str, Any]) -> dict[str, Any]:
    """Validate the shape of an ``esd-metrics-v1`` document and return it."""
    if data.get("format") != METRICS_FORMAT:
        raise SchemaVersionError(
            f"not a metrics snapshot: format {data.get('format')!r} "
            f"(expected {METRICS_FORMAT!r})"
        )
    check_schema_version(data, METRICS_SCHEMA_VERSION, "metrics snapshot")
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("metrics snapshot: 'metrics' must be an object")
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or "type" not in entry:
            raise ValueError(f"metrics snapshot: malformed entry {name!r}")
        if entry["type"] in ("counter", "gauge") and "value" not in entry:
            raise ValueError(f"metrics snapshot: {name!r} has no value")
        if entry["type"] == "histogram":
            for key in ("buckets", "counts", "sum", "count"):
                if key not in entry:
                    raise ValueError(
                        f"metrics snapshot: histogram {name!r} missing {key!r}"
                    )
    return data


def unified_registry(*, solver: Any = None, solver_cache: Any = None,
                     statics: Any = None, executor: Any = None,
                     prune: Any = None) -> MetricsRegistry:
    """A registry pre-bound to the pipeline's stats objects under the
    canonical ``esd_*`` metric names.

    Every reader of solver/cache/static/executor counters -- ``repro
    bench --json``, the ``bench_*`` scripts, session-level reporting --
    goes through this one binding, so the field inventory lives in
    exactly one place.  Pass whichever handles the caller owns:

    * ``solver``       -- a :class:`repro.solver.Solver` (binds
      ``esd_solver_*``; its cache is picked up automatically unless
      ``solver_cache`` overrides it)
    * ``solver_cache`` -- a counterexample cache (``esd_solver_cache_*``
      plus the ``esd_solver_cache_hit_rate`` gauge)
    * ``statics``      -- a static-analysis cache (``esd_static_*``)
    * ``executor``     -- a symbolic executor (``esd_exec_*`` from its
      ``stats`` and ``esd_wp_*`` from its ``prune_stats``)
    * ``prune``        -- a ``StaticPruneStats`` when there is no live
      executor (``esd_wp_*``)
    """
    reg = MetricsRegistry()
    if solver is not None:
        reg.bind_stats("esd_solver", lambda: solver.stats,
                       help_="constraint solver counters")
        if solver_cache is None:
            solver_cache = getattr(solver, "cache", None)
    if solver_cache is not None:
        cache = solver_cache
        reg.bind_stats("esd_solver_cache", lambda: cache.stats,
                       help_="counterexample cache counters")
        reg.gauge("esd_solver_cache_hit_rate",
                  "fraction of cache lookups answered from the cache",
                  fn=lambda: cache.stats.hit_rate)
    if statics is not None:
        reg.bind_stats("esd_static", lambda: statics.stats,
                       help_="static-phase artifact cache counters")
    if executor is not None:
        reg.bind_stats("esd_exec", lambda: executor.stats,
                       help_="symbolic executor counters")
        if prune is None:
            prune = getattr(executor, "prune_stats", None)
    if prune is not None:
        prune_stats = prune
        reg.bind_stats("esd_wp", lambda: prune_stats,
                       help_="necessary-precondition pruning counters")
    return reg


def counters_delta(new: dict[str, Any], old: dict[str, Any]) -> dict[str, Union[int, float]]:
    """Per-counter difference between two ``esd-metrics-v1`` snapshots.

    This is the sanctioned way to measure an interval (a benchmark run, a
    batch member, a scrape period): take a snapshot before and after and
    subtract.  Counters absent from ``old`` are treated as starting at
    zero.  Gauges and histograms are skipped -- they are not interval
    quantities.
    """
    check_metrics_document(new)
    check_metrics_document(old)
    out: dict[str, Union[int, float]] = {}
    old_metrics = old["metrics"]
    for name, entry in new["metrics"].items():
        if entry.get("type") != "counter":
            continue
        before = old_metrics.get(name, {})
        base = before.get("value", 0) if before.get("type") == "counter" else 0
        out[name] = entry["value"] - base
    return out
