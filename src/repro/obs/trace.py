"""Hierarchical span tracer for the ESD pipeline.

The paper's evaluation (Table 1, Figs. 2-4) is entirely an attribution
exercise: where does synthesis wall-clock go, between the static phase,
the path search, the schedule search, and the final constraint solve?
This module provides the substrate for answering that question on the
reproduction: a tree of timed spans

    session -> job -> phase(static | search | solve | replay)
            -> search-quantum -> solver-query

recorded against a single monotonic clock and exported as a versioned
``esd-trace-v1`` JSON document (convertible to Chrome trace-event form
for Perfetto / ``chrome://tracing``).

Design constraints, in priority order:

* **Disabled must be free.**  A disabled tracer is never consulted on
  the executor hot loop at all; instrumented call sites gate on a plain
  ``tracer is not None and tracer.enabled`` attribute check and make no
  calls (and allocate nothing) when it fails.
* **Timing never reaches canonical artifacts.**  Spans live in the
  trace document only; synthesized execution files remain byte-identical
  with tracing on or off (enforced by ``tests/test_obs.py`` and
  ``benchmarks/bench_obs.py``).
* **Cross-process merge.**  Pool workers run their own tracer and ship
  completed spans inside the existing quantum status payloads (the same
  boundary the solver-cache delta merge uses); :meth:`Tracer.ingest`
  remaps ids and re-parents them under the master's search phase span.

Span timestamps are ``time.perf_counter()`` readings paired with a
wall-clock epoch captured at tracer construction, so serialized spans
carry absolute wall times and can be merged across processes.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..schema import SchemaVersionError, check_schema_version

__all__ = [
    "Span",
    "Tracer",
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "check_trace_document",
    "chrome_trace",
    "load_trace",
    "phase_summary",
]

TRACE_FORMAT = "esd-trace-v1"
TRACE_SCHEMA_VERSION = 1

# Spans shorter than this are dropped by :meth:`Tracer.record` (used for
# solver queries, which the cache answers in microseconds); begin/finish
# spans are always kept.  Tests set it to 0.0 for determinism.
DEFAULT_MIN_RECORD_SECONDS = 1e-4


@dataclass(slots=True)
class Span:
    """One timed node in the trace tree.  Times are tracer-relative seconds."""

    span_id: int
    parent_id: int
    name: str
    kind: str
    start: float
    end: float = -1.0
    thread: str = ""
    worker: int = -1
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end < 0.0

    def duration(self, now: Optional[float] = None) -> float:
        end = self.end if self.end >= 0.0 else (now if now is not None else self.start)
        return max(0.0, end - self.start)


class _NullSpanContext:
    """Singleton no-op context manager returned by disabled ``span()`` calls."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Optional[Span]:
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Bounded in-memory span recorder with a thread-local parent stack.

    One tracer instance serves one process; spans from pool workers are
    transported as serialized dicts and re-homed via :meth:`ingest`.
    """

    def __init__(self, enabled: bool = True, *, max_spans: int = 50_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.min_record_seconds = DEFAULT_MIN_RECORD_SECONDS
        self.dropped = 0
        self.high_water = 0  # max buffered spans ever held (capacity probe)
        self.epoch = time.perf_counter()
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Recording

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    def current_span_id(self) -> int:
        stack = self._stack()
        return stack[-1].span_id if stack else 0

    def begin(self, name: str, kind: str = "span",
              attrs: Optional[dict[str, Any]] = None,
              parent_id: Optional[int] = None) -> Optional[Span]:
        """Open a span and push it on this thread's parent stack.

        Returns ``None`` when disabled; :meth:`finish` accepts ``None``
        so call sites can pair begin/finish without re-checking.
        """
        if not self.enabled:
            return None
        stack = self._stack()
        parent = parent_id if parent_id is not None else (
            stack[-1].span_id if stack else 0
        )
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                recorded = False
            else:
                recorded = True
            span = Span(
                span_id=self._next_id,
                parent_id=parent,
                name=name,
                kind=kind,
                start=self._now(),
                thread=threading.current_thread().name,
                attrs=dict(attrs) if attrs else {},
            )
            self._next_id += 1
            if recorded:
                self._spans.append(span)
                if len(self._spans) > self.high_water:
                    self.high_water = len(self._spans)
        stack.append(span)
        return span

    def finish(self, span: Optional[Span],
               attrs: Optional[dict[str, Any]] = None) -> None:
        """Close a span opened by :meth:`begin` and pop the parent stack."""
        if span is None:
            return
        if span.end < 0.0:
            span.end = self._now()
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: unbalanced begin/finish
            stack.remove(span)

    def span(self, name: str, kind: str = "span",
             attrs: Optional[dict[str, Any]] = None):
        """Context-manager form of begin/finish.

        Disabled tracers return a shared no-op context manager, so the
        ``with`` statement allocates nothing.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, self.begin(name, kind, attrs))

    def record(self, name: str, kind: str, start: float, end: float,
               attrs: Optional[dict[str, Any]] = None) -> None:
        """Record an already-timed span from raw ``perf_counter`` readings.

        Used by the solver's query instrumentation: the caller times the
        query first and only reports it when it exceeds
        ``min_record_seconds``, so cache-hit queries (microseconds) cost
        two clock reads and a compare instead of a span allocation.
        """
        if not self.enabled:
            return
        if end - start < self.min_record_seconds:
            return
        stack = self._stack()
        parent = stack[-1].span_id if stack else 0
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            span = Span(
                span_id=self._next_id,
                parent_id=parent,
                name=name,
                kind=kind,
                start=start - self.epoch,
                end=end - self.epoch,
                thread=threading.current_thread().name,
                attrs=dict(attrs) if attrs else {},
            )
            self._next_id += 1
            self._spans.append(span)
            if len(self._spans) > self.high_water:
                self.high_water = len(self._spans)

    def mark(self, name: str, kind: str = "mark",
             attrs: Optional[dict[str, Any]] = None) -> None:
        """Record an instantaneous event (zero-duration span)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        saved, self.min_record_seconds = self.min_record_seconds, -1.0
        try:
            self.record(name, kind, now, now, attrs)
        finally:
            self.min_record_seconds = saved

    # ------------------------------------------------------------------
    # Transport (pool workers -> master)

    def _serialize(self, span: Span, now: float) -> dict[str, Any]:
        end = span.end if span.end >= 0.0 else now
        return {
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "t0": self.epoch_wall + span.start,
            "t1": self.epoch_wall + end,
            "thread": span.thread,
            "worker": span.worker,
            "attrs": span.attrs,
        }

    def drain(self) -> list[dict[str, Any]]:
        """Remove and return all *closed* spans as wall-clock dicts.

        Open spans stay buffered so a later drain (or document export)
        still sees them; workers call this once per quantum status.
        """
        with self._lock:
            closed = [s for s in self._spans if s.end >= 0.0]
            self._spans = [s for s in self._spans if s.end < 0.0]
        now = self._now()
        return [self._serialize(s, now) for s in closed]

    def ingest(self, serialized: list[dict[str, Any]], *,
               worker: int = -1, parent_id: int = 0) -> int:
        """Adopt spans drained from another tracer (typically a worker
        process), remapping ids into this tracer's id space, re-homing
        roots under ``parent_id``, and converting wall-clock times back
        into this tracer's relative frame.  Returns spans adopted.
        """
        if not serialized:
            return 0
        id_map: dict[int, int] = {}
        adopted = 0
        with self._lock:
            for raw in serialized:
                if len(self._spans) >= self.max_spans:
                    self.dropped += len(serialized) - adopted
                    break
                new_id = self._next_id
                self._next_id += 1
                id_map[int(raw["id"])] = new_id
                parent = id_map.get(int(raw["parent"]), parent_id)
                raw_worker = int(raw.get("worker", -1))
                self._spans.append(Span(
                    span_id=new_id,
                    parent_id=parent,
                    name=str(raw["name"]),
                    kind=str(raw["kind"]),
                    start=float(raw["t0"]) - self.epoch_wall,
                    end=float(raw["t1"]) - self.epoch_wall,
                    thread=str(raw.get("thread", "")),
                    worker=raw_worker if raw_worker >= 0 else worker,
                    attrs=dict(raw.get("attrs") or {}),
                ))
                adopted += 1
            if len(self._spans) > self.high_water:
                self.high_water = len(self._spans)
        return adopted

    # ------------------------------------------------------------------
    # Export

    def spans(self) -> Iterator[Span]:
        with self._lock:
            return iter(list(self._spans))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_document(self, meta: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """Export the span tree as an ``esd-trace-v1`` document.

        Open spans are exported with ``end`` clamped to "now" and an
        ``open: true`` attribute; the tracer keeps recording afterwards.
        """
        now = self._now()
        with self._lock:
            snapshot = list(self._spans)
            dropped = self.dropped
            high_water = self.high_water
        spans: list[dict[str, Any]] = []
        for s in sorted(snapshot, key=lambda s: (s.start, s.span_id)):
            end = s.end if s.end >= 0.0 else now
            entry: dict[str, Any] = {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "kind": s.kind,
                "start": round(s.start, 9),
                "end": round(end, 9),
                "thread": s.thread,
            }
            if s.worker >= 0:
                entry["worker"] = s.worker
            if s.attrs:
                entry["attrs"] = s.attrs
            if s.end < 0.0:
                entry["open"] = True
            spans.append(entry)
        doc: dict[str, Any] = {
            "format": TRACE_FORMAT,
            "schema_version": TRACE_SCHEMA_VERSION,
            "epoch_wall": self.epoch_wall,
            "dropped": dropped,
            "high_water": high_water,
            "meta": dict(meta) if meta else {},
            "spans": spans,
        }
        return doc


def check_trace_document(data: dict[str, Any]) -> dict[str, Any]:
    """Validate the shape of an ``esd-trace-v1`` document and return it."""
    if data.get("format") != TRACE_FORMAT:
        raise SchemaVersionError(
            f"not a trace: format {data.get('format')!r} "
            f"(expected {TRACE_FORMAT!r})"
        )
    check_schema_version(data, TRACE_SCHEMA_VERSION, "trace document")
    spans = data.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace document: 'spans' must be a list")
    seen: set[int] = set()
    for entry in spans:
        if not isinstance(entry, dict):
            raise ValueError("trace document: span entries must be objects")
        for key in ("id", "parent", "name", "kind", "start", "end"):
            if key not in entry:
                raise ValueError(f"trace document: span missing {key!r}")
        if entry["end"] < entry["start"]:
            raise ValueError(
                f"trace document: span {entry['id']} ends before it starts"
            )
        if entry["id"] in seen:
            raise ValueError(f"trace document: duplicate span id {entry['id']}")
        seen.add(entry["id"])
    for entry in spans:
        if entry["parent"] != 0 and entry["parent"] not in seen:
            # Tolerated (the parent may have been dropped at the buffer
            # cap) but the reference must at least be an int.
            int(entry["parent"])
    return data


def chrome_trace(doc: dict[str, Any]) -> dict[str, Any]:
    """Convert an ``esd-trace-v1`` document to Chrome trace-event JSON.

    The result loads directly in Perfetto / ``chrome://tracing``: one
    complete ("X") event per span, microsecond timestamps, one virtual
    thread row per (worker, thread) pair so the master and each pool
    worker get their own swimlane.
    """
    check_trace_document(doc)
    lanes: dict[tuple[int, str], int] = {}
    events: list[dict[str, Any]] = []
    for entry in doc["spans"]:
        worker = int(entry.get("worker", -1))
        lane_key = (worker, str(entry.get("thread", "")))
        tid = lanes.setdefault(lane_key, len(lanes) + 1)
        args = dict(entry.get("attrs") or {})
        args["kind"] = entry["kind"]
        if worker >= 0:
            args["worker"] = worker
        events.append({
            "name": entry["name"],
            "cat": entry["kind"],
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": round(float(entry["start"]) * 1e6, 3),
            "dur": round((float(entry["end"]) - float(entry["start"])) * 1e6, 3),
            "args": args,
        })
    for (worker, thread), tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        label = f"worker-{worker}/{thread}" if worker >= 0 else (thread or "main")
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def phase_summary(doc: dict[str, Any]) -> dict[str, Any]:
    """Per-phase wall-clock attribution for an ``esd-trace-v1`` document.

    ``total_seconds`` is the summed duration of the job spans (or, when a
    trace has no job span, the root session span); ``coverage`` is the
    fraction of that total accounted for by phase spans.  The acceptance
    gate requires coverage >= 0.95 on a full synth run.
    """
    check_trace_document(doc)
    phases: dict[str, float] = {}
    total = 0.0
    jobs = 0
    for entry in doc["spans"]:
        dur = float(entry["end"]) - float(entry["start"])
        if entry["kind"] == "phase":
            name = str(entry["name"])
            if name.startswith("phase:"):
                name = name[len("phase:"):]
            phases[name] = phases.get(name, 0.0) + dur
        elif entry["kind"] == "job":
            total += dur
            jobs += 1
    if jobs == 0:
        for entry in doc["spans"]:
            if entry["kind"] == "session":
                total += float(entry["end"]) - float(entry["start"])
    phase_total = sum(phases.values())
    return {
        "jobs": jobs,
        "total_seconds": round(total, 9),
        "phase_seconds": {k: round(v, 9) for k, v in sorted(phases.items())},
        "phase_total_seconds": round(phase_total, 9),
        "coverage": round(phase_total / total, 6) if total > 0.0 else 0.0,
        "dropped": int(doc.get("dropped", 0)),
        "spans": len(doc["spans"]),
    }


def load_trace(path: str) -> dict[str, Any]:
    """Read and validate an ``esd-trace-v1`` document from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return check_trace_document(json.load(fh))
