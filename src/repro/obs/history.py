"""Benchmark history: append every bench record, compare run-over-run.

The ``bench_*`` scripts and ``repro bench --json`` each emit a one-shot
JSON record and forget it; nothing in the repo could answer "is synthesis
slower than it was last week".  This module gives those records a durable
trajectory:

* :func:`append_entry` appends a record to a per-host, per-benchmark
  JSONL history file (``DIR/<bench>.<host>.jsonl``) -- per-host because
  wall-clock numbers from different machines are not comparable, JSONL
  because append is atomic enough under the one-writer-per-host
  assumption and old entries are never rewritten.
* :func:`compare_latest` flattens the newest record's numeric leaves,
  matches them against metric glob patterns (default: every ``*seconds*``
  field), and fails when ``new/baseline`` exceeds a configurable
  regression ratio.  The baseline is the previous entry or the minimum
  over the whole history (``baseline='min'`` resists a creeping series
  of sub-threshold regressions).

Run as a module for CI wiring (exit 1 on regression)::

    python -m repro.obs.history append DIR record.json --bench obs
    python -m repro.obs.history compare DIR --bench obs --max-ratio 1.5

``benchmarks/_history.py`` re-exports this API next to the bench scripts.
"""

from __future__ import annotations

import argparse
import json
import re
import socket
import time
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from ..schema import check_schema_version

__all__ = [
    "HISTORY_FORMAT",
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_METRIC_PATTERNS",
    "history_path",
    "append_entry",
    "load_history",
    "flatten_numeric",
    "compare_latest",
    "render_compare",
    "main",
]

HISTORY_FORMAT = "esd-benchhistory-v1"
HISTORY_SCHEMA_VERSION = 1

# Wall-clock style fields are what regress when the implementation slows
# down; counters (queries, states) move legitimately with feature work.
DEFAULT_METRIC_PATTERNS: tuple[str, ...] = ("*seconds*",)


def _host_tag(host: Optional[str] = None) -> str:
    name = host or socket.gethostname() or "unknown-host"
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


def history_path(directory: Union[str, Path], bench: str,
                 host: Optional[str] = None) -> Path:
    return Path(directory) / f"{bench}.{_host_tag(host)}.jsonl"


def append_entry(directory: Union[str, Path], bench: str,
                 record: dict[str, Any], *, host: Optional[str] = None,
                 timestamp: Optional[float] = None) -> Path:
    """Append one bench record to the history; returns the history file."""
    path = history_path(directory, bench, host)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "format": HISTORY_FORMAT,
        "schema_version": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "host": _host_tag(host),
        "at": round(time.time() if timestamp is None else timestamp, 3),
        "record": record,
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True,
                            separators=(",", ":")) + "\n")
    return path


def load_history(path: Union[str, Path]) -> list[dict[str, Any]]:
    """All entries of one history file, oldest first."""
    entries: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("format") != HISTORY_FORMAT:
                raise ValueError(
                    f"{path}:{line_no}: not a bench history entry "
                    f"(format {entry.get('format')!r})"
                )
            check_schema_version(entry, HISTORY_SCHEMA_VERSION,
                                 "bench history entry")
            entries.append(entry)
    return entries


def flatten_numeric(obj: Any, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested record as dotted-path -> value.

    Lists of objects (per-workload rows) are keyed by a ``workload`` or
    ``name`` field when one exists, by index otherwise, so the same row
    lines up across runs even if ordering changes.
    """
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = float(obj)
        return out
    if isinstance(obj, dict):
        for key in sorted(obj):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(obj[key], path))
        return out
    if isinstance(obj, list):
        for index, item in enumerate(obj):
            label = str(index)
            if isinstance(item, dict):
                for id_key in ("workload", "name", "bench"):
                    if isinstance(item.get(id_key), str):
                        label = item[id_key]
                        break
            path = f"{prefix}[{label}]" if prefix else f"[{label}]"
            out.update(flatten_numeric(item, path))
        return out
    return out


def _matched(name: str, patterns: Iterable[str]) -> bool:
    return any(fnmatch(name, pattern) for pattern in patterns)


def compare_latest(path: Union[str, Path], *, max_ratio: float = 1.5,
                   patterns: Iterable[str] = DEFAULT_METRIC_PATTERNS,
                   baseline: str = "previous",
                   min_seconds: float = 0.001) -> dict[str, Any]:
    """Gate the newest history entry against its baseline.

    ``baseline`` is ``'previous'`` (the entry before the newest) or
    ``'min'`` (per-metric minimum over all earlier entries).  Metrics
    whose baseline is below ``min_seconds`` are skipped -- ratios of
    sub-millisecond timings are all jitter.  Returns a report with
    ``passed``, the regressions found, and what was compared.
    """
    if baseline not in ("previous", "min"):
        raise ValueError(f"unknown baseline mode {baseline!r}")
    entries = load_history(path)
    report: dict[str, Any] = {
        "history": str(path),
        "entries": len(entries),
        "max_ratio": max_ratio,
        "baseline": baseline,
        "patterns": list(patterns),
        "compared": 0,
        "regressions": [],
        "passed": True,
    }
    if len(entries) < 2:
        report["note"] = "fewer than two entries; nothing to compare"
        return report

    newest = flatten_numeric(entries[-1].get("record", {}))
    older = [flatten_numeric(e.get("record", {})) for e in entries[:-1]]

    for name in sorted(newest):
        if not _matched(name, report["patterns"]):
            continue
        if baseline == "previous":
            base = older[-1].get(name)
        else:
            seen = [o[name] for o in older if name in o]
            base = min(seen) if seen else None
        if base is None or base < min_seconds:
            continue
        report["compared"] += 1
        ratio = newest[name] / base
        if ratio > max_ratio:
            report["regressions"].append({
                "metric": name,
                "baseline": round(base, 6),
                "latest": round(newest[name], 6),
                "ratio": round(ratio, 4),
            })
    report["regressions"].sort(key=lambda r: -r["ratio"])
    report["passed"] = not report["regressions"]
    return report


def render_compare(report: dict[str, Any]) -> str:
    lines = [
        f"bench history: {report['history']} ({report['entries']} entries, "
        f"baseline={report['baseline']}, gate {report['max_ratio']}x)"
    ]
    if report.get("note"):
        lines.append(report["note"])
    lines.append(f"compared {report['compared']} metric(s) matching "
                 f"{', '.join(report['patterns'])}")
    for reg in report["regressions"]:
        lines.append(f"REGRESSION {reg['metric']}: {reg['baseline']}s -> "
                     f"{reg['latest']}s ({reg['ratio']:.2f}x)")
    lines.append("PASS" if report["passed"] else "FAIL")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Append to / compare against a benchmark history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="append a bench JSON record")
    p_append.add_argument("directory", help="history directory")
    p_append.add_argument("record", help="bench record JSON file")
    p_append.add_argument("--bench", required=True, help="benchmark name")
    p_append.add_argument("--host", default=None, help="override host tag")

    p_cmp = sub.add_parser("compare", help="gate newest entry vs baseline")
    p_cmp.add_argument("directory", help="history directory")
    p_cmp.add_argument("--bench", required=True, help="benchmark name")
    p_cmp.add_argument("--host", default=None, help="override host tag")
    p_cmp.add_argument("--max-ratio", type=float, default=1.5,
                       help="fail when latest/baseline exceeds this (default 1.5)")
    p_cmp.add_argument("--metrics", nargs="+", default=list(DEFAULT_METRIC_PATTERNS),
                       help="glob patterns of flattened metric paths")
    p_cmp.add_argument("--baseline", choices=("previous", "min"),
                       default="previous")
    p_cmp.add_argument("--json", action="store_true",
                       help="emit the comparison report as JSON")
    args = parser.parse_args(argv)

    if args.command == "append":
        with open(args.record, encoding="utf-8") as fh:
            record = json.load(fh)
        path = append_entry(args.directory, args.bench, record, host=args.host)
        print(f"appended to {path}")
        return 0

    path = history_path(args.directory, args.bench, args.host)
    if not path.exists():
        print(f"no history at {path}")
        return 2
    report = compare_latest(path, max_ratio=args.max_ratio,
                            patterns=args.metrics, baseline=args.baseline)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_compare(report))
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
