"""MiniC to IR compiler.

Compilation strategy (pre-mem2reg LLVM style, which is what ESD's analyses
want to see):

* every named variable is memory-resident -- globals become module globals,
  locals become one ``alloca`` each at function entry whose address lives in a
  dedicated register ``<name>.addr``.  Each read compiles to a ``Load``, each
  write to a ``Store``.  This gives the reaching-definition analysis a
  syntactic handle on variable definitions and makes ``&x`` trivial;
* expression temporaries use fresh virtual registers (``%t0``, ``%t1``, ...);
  registers are frame-lived, so values may flow across basic blocks without
  phi nodes;
* ``&&``/``||`` compile to short-circuit control flow;
* arrays decay to their base address; ``mutex``/``cond`` variables evaluate
  to their address (they are opaque objects, only ever passed to sync ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import ir
from . import ast
from .parser import parse
from .prelude import needed_prelude

_BUILTIN_ARITIES = {
    "getchar": 0, "argc": 0, "abort": 0,
    "getenv": 1, "arg": 1, "print_int": 1,
    "print_str": 1, "exit": 1, "assume": 1, "assert": 1, "malloc": 1,
    "free": 1, "lock": 1, "unlock": 1, "signal": 1, "broadcast": 1,
    "join": 1,
    "read_input": 2, "spawn": 2,
    "wait": 2,
}


class CompileError(Exception):
    def __init__(self, message: str, line: int, col: int = 0) -> None:
        where = f"line {line}:{col}" if col else f"line {line}"
        super().__init__(f"{where}: {message}")
        self.line = line
        self.col = col


@dataclass(slots=True)
class _Symbol:
    name: str
    kind: str  # 'scalar' | 'array' | 'mutex' | 'cond'
    address: ir.Value  # Reg holding the alloca address, or GlobalRef
    size: int = 1


def compile_source(source: str, name: str = "module", prelude: bool = True) -> ir.Module:
    """Parse and compile MiniC ``source`` into a verified IR module.

    With ``prelude`` (the default), referenced library functions (strlen,
    strcpy, atoi, ...) are appended as ordinary MiniC functions; user-defined
    versions take precedence.  The prelude is appended *after* the user code
    so user source-line numbers are unchanged.
    """
    if prelude:
        extra = needed_prelude(source)
        if extra:
            source = source.rstrip("\n") + "\n" + extra
    program = parse(source)
    module = _Compiler(program, name).compile()
    ir.verify_module(module)
    return module


class _Compiler:
    def __init__(self, program: ast.Program, name: str) -> None:
        self._program = program
        self._module = ir.Module(name)
        self._module.source_lines = program.source.splitlines()
        self._globals: dict[str, _Symbol] = {}
        self._func_names = {f.name for f in program.functions}
        # Per-function state:
        self._func: Optional[ir.Function] = None
        self._block: Optional[ir.BasicBlock] = None
        self._locals: dict[str, _Symbol] = {}
        self._temp_counter = 0
        self._label_counter = 0
        self._loop_stack: list[tuple[str, str]] = []  # (break, continue) labels

    # -- top level -----------------------------------------------------------

    def compile(self) -> ir.Module:
        for decl in self._program.globals:
            self._compile_global(decl)
        for func in self._program.functions:
            self._compile_function(func)
        return self._module

    def _compile_global(self, decl: ast.VarDecl) -> None:
        if decl.name in self._globals or decl.name in self._func_names:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line, decl.col)
        if decl.kind in ("mutex", "cond"):
            var = ir.GlobalVar(
                decl.name, 1,
                is_mutex=decl.kind == "mutex", is_cond=decl.kind == "cond",
            )
            self._module.add_global(var)
            self._globals[decl.name] = _Symbol(
                decl.name, decl.kind, ir.GlobalRef(decl.name)
            )
            return
        if decl.kind == "array":
            init = list(decl.init_list or [])
            if len(init) > decl.array_size:
                raise CompileError("too many initializers", decl.line, decl.col)
            self._module.add_global(ir.GlobalVar(decl.name, decl.array_size, init))
            self._globals[decl.name] = _Symbol(
                decl.name, "array", ir.GlobalRef(decl.name), decl.array_size
            )
            return
        init_cells: list[int] = []
        if decl.init is not None:
            value = decl.init
            negate = False
            if isinstance(value, ast.Unary) and value.op == "-":
                negate = True
                value = value.operand
            if not isinstance(value, ast.IntLit):
                raise CompileError(
                    "global initializers must be integer constants", decl.line, decl.col)
            init_cells = [-value.value if negate else value.value]
        self._module.add_global(ir.GlobalVar(decl.name, 1, init_cells))
        self._globals[decl.name] = _Symbol(decl.name, "scalar", ir.GlobalRef(decl.name))

    def _compile_function(self, func_def: ast.FuncDef) -> None:
        if func_def.name in self._module.functions:
            raise CompileError(f"duplicate function {func_def.name!r}", func_def.line, func_def.col)
        self._func = self._module.function(func_def.name, func_def.params)
        self._locals = {}
        self._temp_counter = 0
        self._label_counter = 0
        self._loop_stack = []
        self._block = self._func.block("entry")

        # Spill parameters into allocas so they behave like any other local.
        for param in func_def.params:
            symbol = self._declare_local(param, "scalar", 1, func_def.line,
                                 func_def.col)
            self._emit(
                ir.Store(symbol.address, ir.Reg(param), line=func_def.line)
            )

        self._compile_body(func_def.body)
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Ret(ir.Const(0), line=func_def.line))
        self._func = None

    # -- plumbing --------------------------------------------------------------

    def _emit(self, instr: ir.Instr) -> None:
        assert self._block is not None
        if self._block.terminated:
            # Unreachable code after return/break; park it in a fresh block.
            self._block = self._new_block("dead")
        self._block.append(instr)

    def _temp(self) -> ir.Reg:
        self._temp_counter += 1
        return ir.Reg(f"t{self._temp_counter}")

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _new_block(self, hint: str) -> ir.BasicBlock:
        assert self._func is not None
        return self._func.block(self._new_label(hint))

    def _switch_to(self, block: ir.BasicBlock) -> None:
        self._block = block

    def _declare_local(self, name: str, kind: str, size: int, line: int,
                       col: int = 0) -> _Symbol:
        if name in self._locals:
            raise CompileError(f"redeclaration of {name!r}", line, col)
        addr = ir.Reg(f"{name}.addr")
        self._emit(ir.Alloc(addr, ir.Const(size), heap=False, name=name, line=line))
        symbol = _Symbol(name, kind, addr, size)
        self._locals[name] = symbol
        return symbol

    def _lookup(self, name: str, line: int, col: int = 0) -> _Symbol:
        symbol = self._locals.get(name) or self._globals.get(name)
        if symbol is None:
            raise CompileError(f"undefined variable {name!r}", line, col)
        return symbol

    # -- statements --------------------------------------------------------------

    def _compile_body(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self._compile_statement(stmt)

    def _compile_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._compile_local_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._compile_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._compile_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = (
                self._compile_expr(stmt.value) if stmt.value is not None
                else ir.Const(0)
            )
            self._emit(ir.Ret(value, line=stmt.line))
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", stmt.line, stmt.col)
            self._emit(ir.Br(self._loop_stack[-1][0], line=stmt.line))
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", stmt.line, stmt.col)
            self._emit(ir.Br(self._loop_stack[-1][1], line=stmt.line))
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unsupported statement {stmt!r}", stmt.line, stmt.col)

    def _compile_local_decl(self, decl: ast.VarDecl) -> None:
        if decl.kind in ("mutex", "cond"):
            raise CompileError("mutex/cond must be declared at global scope", decl.line, decl.col)
        size = decl.array_size if decl.kind == "array" else 1
        kind = "array" if decl.kind == "array" else "scalar"
        symbol = self._declare_local(decl.name, kind, size, decl.line,
                                     decl.col)
        if decl.init_list is not None:
            for offset, value in enumerate(decl.init_list):
                addr = self._temp()
                self._emit(
                    ir.Gep(addr, symbol.address, ir.Const(offset), line=decl.line)
                )
                self._emit(ir.Store(addr, ir.Const(value), line=decl.line))
        if decl.init is not None:
            value = self._compile_expr(decl.init)
            self._emit(ir.Store(symbol.address, value, line=decl.line))

    def _compile_assign(self, stmt: ast.Assign) -> None:
        value = self._compile_expr(stmt.value)
        addr = self._compile_lvalue(stmt.target)
        self._emit(ir.Store(addr, value, line=stmt.line))

    def _compile_if(self, stmt: ast.If) -> None:
        then_block = self._new_block("if.then")
        end_block = self._new_block("if.end")
        else_block = self._new_block("if.else") if stmt.else_body else end_block
        self._compile_condition(stmt.cond, then_block.label, else_block.label)

        self._switch_to(then_block)
        self._compile_body(stmt.then_body)
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Br(end_block.label, line=stmt.line))

        if stmt.else_body:
            self._switch_to(else_block)
            self._compile_body(stmt.else_body)
            if self._block is not None and not self._block.terminated:
                self._emit(ir.Br(end_block.label, line=stmt.line))

        self._switch_to(end_block)

    def _compile_while(self, stmt: ast.While) -> None:
        head = self._new_block("while.head")
        body = self._new_block("while.body")
        end = self._new_block("while.end")
        self._emit(ir.Br(head.label, line=stmt.line))
        self._switch_to(head)
        self._compile_condition(stmt.cond, body.label, end.label)
        self._switch_to(body)
        self._loop_stack.append((end.label, head.label))
        self._compile_body(stmt.body)
        self._loop_stack.pop()
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Br(head.label, line=stmt.line))
        self._switch_to(end)

    def _compile_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._compile_statement(stmt.init)
        head = self._new_block("for.head")
        body = self._new_block("for.body")
        step = self._new_block("for.step")
        end = self._new_block("for.end")
        self._emit(ir.Br(head.label, line=stmt.line))
        self._switch_to(head)
        if stmt.cond is not None:
            self._compile_condition(stmt.cond, body.label, end.label)
        else:
            self._emit(ir.Br(body.label, line=stmt.line))
        self._switch_to(body)
        self._loop_stack.append((end.label, step.label))
        self._compile_body(stmt.body)
        self._loop_stack.pop()
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Br(step.label, line=stmt.line))
        self._switch_to(step)
        if stmt.step is not None:
            self._compile_statement(stmt.step)
        self._emit(ir.Br(head.label, line=stmt.line))
        self._switch_to(end)

    def _compile_condition(self, cond: ast.Expr, then_label: str, else_label: str) -> None:
        """Compile a boolean context with short-circuiting into branches."""
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            middle = self._new_block("and.rhs")
            self._compile_condition(cond.lhs, middle.label, else_label)
            self._switch_to(middle)
            self._compile_condition(cond.rhs, then_label, else_label)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            middle = self._new_block("or.rhs")
            self._compile_condition(cond.lhs, then_label, middle.label)
            self._switch_to(middle)
            self._compile_condition(cond.rhs, then_label, else_label)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._compile_condition(cond.operand, else_label, then_label)
            return
        value = self._compile_expr(cond)
        self._emit(ir.CondBr(value, then_label, else_label, line=cond.line))

    # -- expressions --------------------------------------------------------------

    def _compile_lvalue(self, expr: ast.Expr) -> ir.Value:
        """Compile an expression to the *address* being assigned."""
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.name, expr.line, expr.col)
            if symbol.kind != "scalar":
                raise CompileError(f"cannot assign to {symbol.kind} {expr.name!r}", expr.line, expr.col)
            return symbol.address
        if isinstance(expr, ast.Index):
            base = self._compile_expr(expr.base)
            index = self._compile_expr(expr.index)
            addr = self._temp()
            self._emit(ir.Gep(addr, base, index, line=expr.line))
            return addr
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._compile_expr(expr.operand)
        raise CompileError("expression is not assignable", expr.line, expr.col)

    def _compile_expr(self, expr: ast.Expr, want_value: bool = True) -> ir.Value:
        if isinstance(expr, ast.IntLit):
            return ir.Const(expr.value)
        if isinstance(expr, ast.StrLit):
            return ir.GlobalRef(self._module.intern_string(expr.value))
        if isinstance(expr, ast.Ident):
            return self._compile_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Index):
            base = self._compile_expr(expr.base)
            index = self._compile_expr(expr.index)
            addr = self._temp()
            self._emit(ir.Gep(addr, base, index, line=expr.line))
            dst = self._temp()
            self._emit(ir.Load(dst, addr, line=expr.line))
            return dst
        if isinstance(expr, ast.CallExpr):
            return self._compile_call(expr, want_value)
        raise CompileError(f"unsupported expression {expr!r}", expr.line, expr.col)

    def _compile_ident(self, expr: ast.Ident) -> ir.Value:
        if expr.name in self._func_names and expr.name not in self._locals:
            return ir.FuncRef(expr.name)
        symbol = self._lookup(expr.name, expr.line, expr.col)
        if symbol.kind in ("array", "mutex", "cond"):
            return symbol.address  # arrays decay; sync objects are opaque
        dst = self._temp()
        self._emit(ir.Load(dst, symbol.address, line=expr.line))
        return dst

    def _compile_unary(self, expr: ast.Unary) -> ir.Value:
        if expr.op == "&":
            if isinstance(expr.operand, ast.Ident):
                name = expr.operand.name
                if name in self._func_names and name not in self._locals:
                    return ir.FuncRef(name)
                return self._lookup(name, expr.line, expr.col).address
            if isinstance(expr.operand, ast.Index):
                base = self._compile_expr(expr.operand.base)
                index = self._compile_expr(expr.operand.index)
                addr = self._temp()
                self._emit(ir.Gep(addr, base, index, line=expr.line))
                return addr
            raise CompileError("cannot take address of expression", expr.line, expr.col)
        if expr.op == "*":
            ptr = self._compile_expr(expr.operand)
            dst = self._temp()
            self._emit(ir.Load(dst, ptr, line=expr.line))
            return dst
        operand = self._compile_expr(expr.operand)
        if expr.op == "-" and isinstance(operand, ir.Const):
            return ir.Const(-operand.value)
        dst = self._temp()
        self._emit(ir.UnOp(dst, expr.op, operand, line=expr.line))
        return dst

    def _compile_binary(self, expr: ast.Binary) -> ir.Value:
        if expr.op in ("&&", "||"):
            return self._compile_short_circuit(expr)
        lhs = self._compile_expr(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        dst = self._temp()
        self._emit(ir.BinOp(dst, expr.op, lhs, rhs, line=expr.line))
        return dst

    def _compile_short_circuit(self, expr: ast.Binary) -> ir.Value:
        """Compile ``a && b`` / ``a || b`` in value position via control flow."""
        result = ir.Reg(f"sc{self._label_counter}.{self._temp_counter}")
        self._temp_counter += 1
        true_block = self._new_block("sc.true")
        false_block = self._new_block("sc.false")
        end_block = self._new_block("sc.end")
        self._compile_condition(expr, true_block.label, false_block.label)
        self._switch_to(true_block)
        self._emit(ir.Assign(result, ir.Const(1), line=expr.line))
        self._emit(ir.Br(end_block.label, line=expr.line))
        self._switch_to(false_block)
        self._emit(ir.Assign(result, ir.Const(0), line=expr.line))
        self._emit(ir.Br(end_block.label, line=expr.line))
        self._switch_to(end_block)
        return result

    # -- calls --------------------------------------------------------------------

    def _compile_call(self, expr: ast.CallExpr, want_value: bool) -> ir.Value:
        callee = expr.callee
        if isinstance(callee, ast.Ident):
            name = callee.name
            if name in _BUILTIN_ARITIES and name not in self._func_names:
                return self._compile_builtin(name, expr)
            if name in self._func_names and name not in self._locals:
                args = [self._compile_expr(arg) for arg in expr.args]
                want = len(self._program_params(name))
                if len(args) != want:
                    raise CompileError(
                        f"{name}() takes {want} args, got {len(args)}", expr.line, expr.col)
                dst = self._temp() if want_value else self._temp()
                self._emit(ir.Call(dst, ir.FuncRef(name), args, line=expr.line))
                return dst
        # Indirect call through a function-pointer value.
        target = self._compile_expr(callee)
        args = [self._compile_expr(arg) for arg in expr.args]
        dst = self._temp()
        self._emit(ir.Call(dst, target, args, line=expr.line))
        return dst

    def _program_params(self, name: str) -> list[str]:
        for func in self._program.functions:
            if func.name == name:
                return func.params
        raise KeyError(name)

    def _compile_builtin(self, name: str, expr: ast.CallExpr) -> ir.Value:
        arity = _BUILTIN_ARITIES[name]
        if len(expr.args) != arity:
            raise CompileError(
                f"{name}() takes {arity} args, got {len(expr.args)}", expr.line, expr.col)
        line = expr.line
        args = [self._compile_expr(arg) for arg in expr.args]

        if name == "assert":
            message = self._module.source_line(line).strip() or f"assert at line {line}"
            self._emit(ir.Assert(args[0], message, line=line))
            return ir.Const(0)
        if name == "malloc":
            dst = self._temp()
            self._emit(ir.Alloc(dst, args[0], heap=True, name="malloc", line=line))
            return dst
        if name == "free":
            self._emit(ir.Free(args[0], line=line))
            return ir.Const(0)
        if name == "lock":
            self._emit(ir.MutexLock(args[0], line=line))
            return ir.Const(0)
        if name == "unlock":
            self._emit(ir.MutexUnlock(args[0], line=line))
            return ir.Const(0)
        if name == "wait":
            self._emit(ir.CondWait(args[0], args[1], line=line))
            return ir.Const(0)
        if name == "signal":
            self._emit(ir.CondSignal(args[0], broadcast=False, line=line))
            return ir.Const(0)
        if name == "broadcast":
            self._emit(ir.CondSignal(args[0], broadcast=True, line=line))
            return ir.Const(0)
        if name == "spawn":
            dst = self._temp()
            self._emit(ir.ThreadCreate(dst, args[0], args[1], line=line))
            return dst
        if name == "join":
            dst = self._temp()
            self._emit(ir.ThreadJoin(dst, args[0], line=line))
            return dst

        dst = self._temp()
        self._emit(ir.Intrinsic(dst, name, args, line=line))
        return dst
