"""Lexer for MiniC, the C-like source language of this reproduction.

MiniC stands in for the C programs the paper compiles to LLVM bitcode.  The
lexer keeps 1-based line numbers on every token; lines flow through the
compiler into the IR so coredumps and the debugger can report source
positions, like the paper's gdb-based playback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset(
    {
        "int", "void", "char", "mutex", "cond",
        "if", "else", "while", "for", "return", "break", "continue",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class LexError(Exception):
    def __init__(self, message: str, line: int, col: int = 0) -> None:
        where = f"line {line}:{col}" if col else f"line {line}"
        super().__init__(f"{where}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'int', 'char', 'string', 'ident', 'kw', 'op', 'eof'
    text: str
    line: int
    value: int = 0
    col: int = 0  # 1-based column of the token's first character

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


def tokenize(source: str) -> list[Token]:
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0  # index of the first character of the current line
    n = len(source)
    while pos < n:
        ch = source[pos]
        col = pos - line_start + 1
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            line += source.count("\n", pos, end)
            newline = source.rfind("\n", pos, end + 2)
            if newline >= 0:
                line_start = newline + 1
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            while pos < n and source[pos].isdigit():
                pos += 1
            text = source[start:pos]
            yield Token("int", text, line, value=int(text), col=col)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "kw" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col=col)
            continue
        if ch == "'":
            value, pos = _char_literal(source, pos, line)
            yield Token("char", source[pos - 1], line, value=value, col=col)
            continue
        if ch == '"':
            text, pos, new_line = _string_literal(source, pos, line)
            yield Token("string", text, new_line, col=col)
            line = new_line
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                yield Token("op", op, line, col=col)
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col=pos - line_start + 1)


def _char_literal(source: str, pos: int, line: int) -> tuple[int, int]:
    pos += 1  # opening quote
    if pos >= len(source):
        raise LexError("unterminated char literal", line)
    ch = source[pos]
    if ch == "\\":
        pos += 1
        if pos >= len(source) or source[pos] not in _ESCAPES:
            raise LexError("bad escape in char literal", line)
        value = ord(_ESCAPES[source[pos]])
    else:
        value = ord(ch)
    pos += 1
    if pos >= len(source) or source[pos] != "'":
        raise LexError("unterminated char literal", line)
    return value, pos + 1


def _string_literal(source: str, pos: int, line: int) -> tuple[str, int, int]:
    start_line = line
    pos += 1  # opening quote
    chars: list[str] = []
    while pos < len(source):
        ch = source[pos]
        if ch == '"':
            return "".join(chars), pos + 1, line
        if ch == "\n":
            raise LexError("newline in string literal", line)
        if ch == "\\":
            pos += 1
            if pos >= len(source) or source[pos] not in _ESCAPES:
                raise LexError("bad escape in string literal", line)
            chars.append(_ESCAPES[source[pos]])
        else:
            chars.append(ch)
        pos += 1
    raise LexError("unterminated string literal", start_line)
