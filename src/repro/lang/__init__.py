"""MiniC: the C-like frontend standing in for the paper's C-to-LLVM pipeline."""

from .ast import Program
from .compiler import CompileError, compile_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse

__all__ = [
    "CompileError",
    "LexError",
    "ParseError",
    "Program",
    "Token",
    "compile_source",
    "parse",
    "tokenize",
]
