"""MiniC prelude: the tiny libc the workloads link against.

String and memory helpers are *library functions written in MiniC*, not
executor intrinsics.  That way, symbolic execution forks inside them through
ordinary branches (``strlen`` over a symbolic buffer forks once per candidate
terminator position) exactly as Klee forks inside uclibc.

``compile_source`` appends only the prelude functions a program references
(plus their transitive dependencies), unless the program defines its own
version of a function, which then takes precedence.
"""

from __future__ import annotations

import re

PRELUDE_FUNCTIONS: dict[str, str] = {
    "strlen": """
int strlen(int *s) {
    int n = 0;
    while (s[n] != 0) {
        n = n + 1;
    }
    return n;
}
""",
    "strcpy": """
int *strcpy(int *dst, int *src) {
    int i = 0;
    while (src[i] != 0) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return dst;
}
""",
    "strcat": """
int *strcat(int *dst, int *src) {
    int n = strlen(dst);
    int i = 0;
    while (src[i] != 0) {
        dst[n + i] = src[i];
        i = i + 1;
    }
    dst[n + i] = 0;
    return dst;
}
""",
    "strcmp": """
int strcmp(int *a, int *b) {
    int i = 0;
    while (a[i] != 0 && a[i] == b[i]) {
        i = i + 1;
    }
    return a[i] - b[i];
}
""",
    "strncmp": """
int strncmp(int *a, int *b, int n) {
    int i = 0;
    while (i < n) {
        if (a[i] != b[i]) {
            return a[i] - b[i];
        }
        if (a[i] == 0) {
            return 0;
        }
        i = i + 1;
    }
    return 0;
}
""",
    "strchr_at": """
int strchr_at(int *s, int c) {
    int i = 0;
    while (s[i] != 0) {
        if (s[i] == c) {
            return i;
        }
        i = i + 1;
    }
    return 0 - 1;
}
""",
    "memset": """
int *memset(int *dst, int value, int n) {
    int i = 0;
    while (i < n) {
        dst[i] = value;
        i = i + 1;
    }
    return dst;
}
""",
    "memcpy": """
int *memcpy(int *dst, int *src, int n) {
    int i = 0;
    while (i < n) {
        dst[i] = src[i];
        i = i + 1;
    }
    return dst;
}
""",
    "atoi": """
int atoi(int *s) {
    int i = 0;
    int neg = 0;
    int n = 0;
    if (s[0] == '-') {
        neg = 1;
        i = 1;
    }
    while (s[i] >= '0' && s[i] <= '9') {
        n = n * 10 + (s[i] - '0');
        i = i + 1;
    }
    if (neg) {
        return 0 - n;
    }
    return n;
}
""",
}

# Prelude functions may call each other; include callees transitively.
_DEPENDENCIES: dict[str, list[str]] = {
    "strcat": ["strlen"],
}


def needed_prelude(user_source: str) -> str:
    """Prelude text for every prelude function the user program references
    (by word-boundary match) and does not define itself."""
    defined = set(
        re.findall(r"\b(?:int|void|char)\s*\**\s*(\w+)\s*\(", user_source)
    )
    wanted: list[str] = []

    def want(name: str) -> None:
        if name in wanted or name in defined:
            return
        wanted.append(name)
        for dep in _DEPENDENCIES.get(name, []):
            want(dep)

    for name in PRELUDE_FUNCTIONS:
        if name in defined:
            continue
        if re.search(rf"\b{name}\s*\(", user_source):
            want(name)

    if not wanted:
        return ""
    parts = ["// --- prelude ---"]
    for name in wanted:
        parts.append(PRELUDE_FUNCTIONS[name].strip())
    return "\n".join(parts) + "\n"
