"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, line: int, col: int = 0) -> None:
        where = f"line {line}:{col}" if col else f"line {line}"
        super().__init__(f"{where}: {message}")
        self.line = line
        self.col = col


# Binary operator precedence levels, lowest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_TYPE_KEYWORDS = frozenset({"int", "void", "char"})


def parse(source: str) -> ast.Program:
    """Parse MiniC source into a :class:`~repro.lang.ast.Program`."""
    return _Parser(tokenize(source), source).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # -- token plumbing ----------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        tok = self._tok
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._tok
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, got {tok.text!r}", tok.line, tok.col)
        return self._advance()

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self._tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self._advance()
        return None

    # -- grammar -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: list[ast.VarDecl] = []
        functions: list[ast.FuncDef] = []
        while self._tok.kind != "eof":
            if self._tok.kind != "kw":
                raise ParseError(
                    f"expected declaration, got {self._tok.text!r}", self._tok.line, self._tok.col)
            if self._tok.text in ("mutex", "cond"):
                globals_.append(self._parse_sync_decl())
                continue
            if self._tok.text not in _TYPE_KEYWORDS:
                raise ParseError(f"unexpected keyword {self._tok.text!r}", self._tok.line, self._tok.col)
            # Distinguish "int f(...) {" from "int x;" by looking past the name.
            offset = 1
            while self._peek(offset).text == "*":
                offset += 1
            if self._peek(offset).kind != "ident":
                raise ParseError("expected name after type", self._tok.line, self._tok.col)
            after = self._peek(offset + 1)
            if after.text == "(":
                functions.append(self._parse_function())
            else:
                globals_.append(self._parse_var_decl())
        return ast.Program(globals_, functions, source=self._source, line=1, col=1)

    def _parse_sync_decl(self) -> ast.VarDecl:
        kw = self._advance()  # mutex | cond
        name = self._expect("ident")
        self._expect("op", ";")
        return ast.VarDecl(name.text, kw.text, line=kw.line, col=kw.col)

    def _parse_function(self) -> ast.FuncDef:
        start = self._advance()  # return type keyword
        while self._match("op", "*"):
            pass
        name = self._expect("ident")
        self._expect("op", "(")
        params: list[str] = []
        if not self._match("op", ")"):
            while True:
                if self._tok.kind == "kw" and self._tok.text in _TYPE_KEYWORDS:
                    self._advance()
                    while self._match("op", "*"):
                        pass
                params.append(self._expect("ident").text)
                if self._match("op", ")"):
                    break
                self._expect("op", ",")
        self._expect("op", "{")
        body = self._parse_block_body()
        return ast.FuncDef(name.text, params, body, line=start.line, col=start.col)

    def _parse_block_body(self) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while not self._match("op", "}"):
            if self._tok.kind == "eof":
                raise ParseError("unexpected end of file in block", self._tok.line, self._tok.col)
            stmts.append(self._parse_statement())
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        tok = self._tok
        if tok.kind == "kw":
            if tok.text in _TYPE_KEYWORDS:
                return self._parse_var_decl()
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self._advance()
                value = None
                if not (self._tok.kind == "op" and self._tok.text == ";"):
                    value = self._parse_expression()
                self._expect("op", ";")
                return ast.Return(value, line=tok.line, col=tok.col)
            if tok.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(line=tok.line, col=tok.col)
            if tok.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(line=tok.line, col=tok.col)
            raise ParseError(f"unexpected keyword {tok.text!r}", tok.line, tok.col)
        if tok.text == "{":
            # A bare block is allowed and flattened by the compiler.
            self._advance()
            body = self._parse_block_body()
            return ast.If(ast.IntLit(1, line=tok.line, col=tok.col), body, [], line=tok.line, col=tok.col)
        return self._parse_assign_or_expr()

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._expect("kw")  # int | void | char
        kind = "int"
        while self._match("op", "*"):
            kind = "ptr"
        name = self._expect("ident")
        if self._match("op", "["):
            size = self._expect("int")
            self._expect("op", "]")
            init_list: Optional[list[int]] = None
            if self._match("op", "="):
                self._expect("op", "{")
                init_list = []
                while not self._match("op", "}"):
                    item = self._parse_const_item()
                    init_list.append(item)
                    if not self._match("op", ","):
                        self._expect("op", "}")
                        break
            self._expect("op", ";")
            return ast.VarDecl(
                name.text, "array", array_size=size.value,
                init_list=init_list, line=start.line,
            )
        init = None
        if self._match("op", "="):
            init = self._parse_expression()
        self._expect("op", ";")
        return ast.VarDecl(name.text, kind, init=init, line=start.line, col=start.col)

    def _parse_const_item(self) -> int:
        negative = bool(self._match("op", "-"))
        tok = self._tok
        if tok.kind == "int" or tok.kind == "char":
            self._advance()
            return -tok.value if negative else tok.value
        raise ParseError("expected constant in initializer list", tok.line, tok.col)

    def _parse_if(self) -> ast.If:
        start = self._expect("kw", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then_body = self._parse_body_or_single()
        else_body: list[ast.Stmt] = []
        if self._match("kw", "else"):
            if self._tok.kind == "kw" and self._tok.text == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body_or_single()
        return ast.If(cond, then_body, else_body, line=start.line, col=start.col)

    def _parse_while(self) -> ast.While:
        start = self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_body_or_single()
        return ast.While(cond, body, line=start.line, col=start.col)

    def _parse_for(self) -> ast.For:
        start = self._expect("kw", "for")
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self._match("op", ";"):
            if self._tok.kind == "kw" and self._tok.text in _TYPE_KEYWORDS:
                init = self._parse_var_decl()
            else:
                init = self._parse_assign_or_expr()
        cond: Optional[ast.Expr] = None
        if not (self._tok.kind == "op" and self._tok.text == ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step: Optional[ast.Stmt] = None
        if not (self._tok.kind == "op" and self._tok.text == ")"):
            step = self._parse_assign_or_expr(consume_semicolon=False)
        self._expect("op", ")")
        body = self._parse_body_or_single()
        return ast.For(init, cond, step, body, line=start.line, col=start.col)

    def _parse_body_or_single(self) -> list[ast.Stmt]:
        if self._match("op", "{"):
            return self._parse_block_body()
        return [self._parse_statement()]

    def _parse_assign_or_expr(self, consume_semicolon: bool = True) -> ast.Stmt:
        line = self._tok.line
        col = self._tok.col
        expr = self._parse_expression()
        if self._match("op", "="):
            value = self._parse_expression()
            if consume_semicolon:
                self._expect("op", ";")
            return ast.Assign(expr, value, line=line, col=col)
        if consume_semicolon:
            self._expect("op", ";")
        return ast.ExprStmt(expr, line=line, col=col)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self._tok.kind == "op" and self._tok.text in ops:
            op = self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(op.text, lhs, rhs, line=op.line, col=op.col)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(tok.text, operand, line=tok.line, col=tok.col)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._tok
            if tok.kind == "op" and tok.text == "(":
                self._advance()
                args: list[ast.Expr] = []
                if not self._match("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._match("op", ")"):
                            break
                        self._expect("op", ",")
                expr = ast.CallExpr(expr, args, line=tok.line, col=tok.col)
            elif tok.kind == "op" and tok.text == "[":
                self._advance()
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.Index(expr, index, line=tok.line, col=tok.col)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind in ("int", "char"):
            self._advance()
            return ast.IntLit(tok.value, line=tok.line, col=tok.col)
        if tok.kind == "string":
            self._advance()
            return ast.StrLit(tok.text, line=tok.line, col=tok.col)
        if tok.kind == "ident":
            self._advance()
            return ast.Ident(tok.text, line=tok.line, col=tok.col)
        if tok.kind == "op" and tok.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)
