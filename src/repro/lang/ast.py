"""Abstract syntax tree for MiniC.

Every node carries the source line (and 1-based column) it started on; the
compiler propagates lines onto IR instructions and positions onto
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# --- Expressions -----------------------------------------------------------


@dataclass(slots=True)
class IntLit(Node):
    value: int


@dataclass(slots=True)
class StrLit(Node):
    value: str


@dataclass(slots=True)
class Ident(Node):
    name: str


@dataclass(slots=True)
class Unary(Node):
    op: str  # '-', '!', '~', '*' (deref), '&' (address-of)
    operand: "Expr"


@dataclass(slots=True)
class Binary(Node):
    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass(slots=True)
class Index(Node):
    base: "Expr"
    index: "Expr"


@dataclass(slots=True)
class CallExpr(Node):
    callee: "Expr"  # Ident (direct, builtin, or variable) or arbitrary expr
    args: list["Expr"]


Expr = IntLit | StrLit | Ident | Unary | Binary | Index | CallExpr


# --- Statements ------------------------------------------------------------


@dataclass(slots=True)
class VarDecl(Node):
    """``int x;``, ``int x = e;``, ``int a[N];``, ``int *p;``."""

    name: str
    kind: str  # 'int' | 'ptr' | 'array' | 'mutex' | 'cond'
    array_size: int = 0
    init: Optional[Expr] = None
    init_list: Optional[list[int]] = None


@dataclass(slots=True)
class Assign(Node):
    target: Expr  # Ident, Index, or Unary('*')
    value: Expr


@dataclass(slots=True)
class ExprStmt(Node):
    expr: Expr


@dataclass(slots=True)
class If(Node):
    cond: Expr
    then_body: list["Stmt"]
    else_body: list["Stmt"]


@dataclass(slots=True)
class While(Node):
    cond: Expr
    body: list["Stmt"]


@dataclass(slots=True)
class For(Node):
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: list["Stmt"]


@dataclass(slots=True)
class Return(Node):
    value: Optional[Expr]


@dataclass(slots=True)
class Break(Node):
    pass


@dataclass(slots=True)
class Continue(Node):
    pass


Stmt = VarDecl | Assign | ExprStmt | If | While | For | Return | Break | Continue


# --- Top level -------------------------------------------------------------


@dataclass(slots=True)
class FuncDef(Node):
    name: str
    params: list[str]
    body: list[Stmt]


@dataclass(slots=True)
class Program(Node):
    globals: list[VarDecl]
    functions: list[FuncDef]
    source: str = ""
