"""Property tests for interval arithmetic: forward evaluation must be sound
(the true value of an expression always lies inside the computed interval),
because the solver prunes domains with it -- an unsound interval would make
the solver drop real solutions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import IntervalEvaluator, binop, evaluate, make_var, unop
from repro.solver.intervals import Interval, add, divide, modulo, mul, sub

ints = st.integers(-1000, 1000)


@st.composite
def interval_and_member(draw):
    lo = draw(ints)
    hi = draw(st.integers(lo, lo + draw(st.integers(0, 200))))
    value = draw(st.integers(lo, hi))
    return Interval(lo, hi), value


class TestIntervalOps:
    @settings(max_examples=150, deadline=None)
    @given(interval_and_member(), interval_and_member())
    def test_add_sound(self, a, b):
        ia, va = a
        ib, vb = b
        assert va + vb in add(ia, ib)

    @settings(max_examples=150, deadline=None)
    @given(interval_and_member(), interval_and_member())
    def test_sub_sound(self, a, b):
        ia, va = a
        ib, vb = b
        assert va - vb in sub(ia, ib)

    @settings(max_examples=150, deadline=None)
    @given(interval_and_member(), interval_and_member())
    def test_mul_sound(self, a, b):
        ia, va = a
        ib, vb = b
        assert va * vb in mul(ia, ib)

    @settings(max_examples=150, deadline=None)
    @given(interval_and_member(), interval_and_member())
    def test_div_sound(self, a, b):
        ia, va = a
        ib, vb = b
        if vb == 0:
            return
        quotient = abs(va) // abs(vb)
        if (va < 0) != (vb < 0):
            quotient = -quotient
        assert quotient in divide(ia, ib)

    @settings(max_examples=150, deadline=None)
    @given(interval_and_member(), st.integers(1, 50))
    def test_mod_sound(self, a, c):
        ia, va = a
        remainder = va - (abs(va) // c) * c * (1 if va >= 0 else -1)
        assert remainder in modulo(ia, Interval(c, c))

    def test_empty_and_membership(self):
        assert Interval(3, 2).empty
        assert not Interval(2, 2).empty
        assert 2 in Interval(2, 2)
        assert len(Interval(1, 4)) == 4

    def test_intersect_union(self):
        a, b = Interval(0, 10), Interval(5, 20)
        assert a.intersect(b) == Interval(5, 10)
        assert a.union(b) == Interval(0, 20)
        assert a.intersect(Interval(11, 12)).empty


_OPS = ["+", "-", "*", "==", "!=", "<", "<=", ">", ">="]


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 10**6),
    st.sampled_from(_OPS),
    st.sampled_from(_OPS),
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(0, 30),
    st.integers(0, 30),
)
def test_forward_evaluation_sound_on_random_exprs(counter, op1, op2, c1, c2, va, vb):
    """Build (a op1 c1) op2 (b op... ) style expressions; the concrete value
    under any in-domain assignment must lie in the evaluated interval."""
    a = make_var(f"iv_a{counter}", 0, 30)
    b = make_var(f"iv_b{counter}", 0, 30)
    expr = binop(op2, binop(op1, a, c1), binop("+", b, c2))
    if isinstance(expr, int):
        return
    concrete = evaluate(expr, {a.name: va, b.name: vb})
    interval = IntervalEvaluator({}).eval(expr)
    assert concrete in interval


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10**6), st.integers(-50, 50), st.integers(0, 40))
def test_unary_forward_sound(counter, c, value):
    v = make_var(f"iv_u{counter}", 0, 40)
    for op in ("-", "!", "~"):
        expr = unop(op, binop("+", v, c))
        if isinstance(expr, int):
            continue
        concrete = evaluate(expr, {v.name: value})
        interval = IntervalEvaluator({}).eval(expr)
        assert concrete in interval
