"""The real-Python frontend: differential semantics against CPython,
golden IR, and precise rejection of out-of-subset constructs.

Differential tests are the frontend's correctness contract: for every
in-subset program, the concrete executor's result must equal CPython's
(``main()``'s return value, and the exception-to-bug-kind mapping for
crashing programs).  A frontend that *miscompiles* instead of rejecting
would silently synthesize executions of the wrong program.
"""

import pytest

from repro.frontend import (
    FrontendError,
    PythonCompileError,
    UnsupportedPythonError,
    compile_python_source,
)
from repro.ir.printer import format_function
from repro.symbex import BugKind, ConcreteEnv, Executor, RecordedInputs


def run_ir(source, env=None):
    module = compile_python_source(source, "t")
    executor = Executor(module, env=ConcreteEnv(env or RecordedInputs()))
    return executor.run_to_completion(executor.initial_state())


def run_cpython(source):
    namespace = {"__name__": "not_main"}
    exec(compile(source, "<test>", "exec"), namespace)
    return namespace["main"]()


# ---------------------------------------------------------------------------
# Differential semantics: executor result == CPython result.
# ---------------------------------------------------------------------------

DIFFERENTIAL_PROGRAMS = {
    "arith-chain": """\
def main():
    x = 10
    y = x * 3 + 4 - 2
    return y % 17
""",
    "floor-division-negatives": """\
def main():
    a = -7
    b = 2
    return (a // b) * 100 + (-9 // -4) * 10 + (7 // -2)
""",
    "floor-modulo-negatives": """\
def main():
    return (-7 % 3) * 100 + (7 % -3) * 10 + (-7 % -3)
""",
    "augassign": """\
def main():
    x = 5
    x += 3
    x -= 1
    x *= 2
    x //= 3
    x %= 3
    return x
""",
    "while-loop": """\
def main():
    i = 0
    s = 0
    while i < 10:
        s = s + i
        i = i + 1
    return s
""",
    "for-range-variants": """\
def main():
    s = 0
    for i in range(5):
        s = s + i
    for j in range(2, 8):
        s = s + j
    for k in range(10, 0, -3):
        s = s + k
    return s
""",
    "for-loop-var-keeps-last-value": """\
def main():
    i = 99
    for i in range(4):
        pass
    return i
""",
    "break-continue": """\
def main():
    s = 0
    i = 0
    while i < 20:
        i = i + 1
        if i % 2 == 0:
            continue
        if i > 11:
            break
        s = s + i
    return s * 100 + i
""",
    "chained-comparison": """\
def main():
    a = 3
    b = 5
    return (1 < a < 10) * 100 + (a <= b <= 4) * 10 + (0 == 0 == 0)
""",
    "boolop-condition": """\
def main():
    a = 4
    b = 0
    if a > 2 and not b:
        return 1
    if a > 9 or b == 0:
        return 2
    return 3
""",
    "boolop-value-position": """\
def main():
    a = 7
    x = a > 3 and a < 5
    y = a == 7 or a == 0
    return x * 10 + y
""",
    "lists": """\
ws = [10, 20, 30]


def main():
    xs = [1, 2, 3, 4]
    ys = [0] * 3
    ys[1] = xs[0] + xs[-1]
    ys[2] = len(xs) + len(ws)
    return ys[0] + ys[1] * 10 + ys[2] + ws[-2]
""",
    "globals-and-calls": """\
COUNT = 0


def bump(n):
    global COUNT
    COUNT = COUNT + n
    return COUNT


def main():
    bump(3)
    bump(4)
    return COUNT * 10 + bump(0)
""",
    "early-return-and-nesting": """\
def classify(n):
    if n < 0:
        return -1
    if n == 0:
        return 0
    if n < 10:
        return 1
    return 2


def main():
    return (classify(-5) + 1) * 1000 + classify(0) * 100 \\
        + classify(7) * 10 + classify(77)
""",
    "assert-passes": """\
def main():
    x = 6 * 7
    assert x == 42
    return x
""",
    "recursion": """\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)


def main():
    return fib(10)
""",
}


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(DIFFERENTIAL_PROGRAMS))
    def test_matches_cpython(self, name):
        source = DIFFERENTIAL_PROGRAMS[name]
        state = run_ir(source)
        assert state.status == "exited", (state.status, state.bug)
        assert state.exit_code == run_cpython(source)

    def test_env_gated_branch(self, monkeypatch):
        source = """\
import os


def main():
    mode = os.getenv("MODE")
    if mode[0] == 'A':
        return 10
    return 20
"""
        state = run_ir(source, RecordedInputs(env={"MODE": "A"}))
        monkeypatch.setenv("MODE", "A")
        assert state.exit_code == run_cpython(source) == 10


EXCEPTION_PROGRAMS = {
    "assert-fail": (
        """\
def main():
    x = 1
    assert x == 2, "x must be two"
    return 0
""",
        AssertionError, BugKind.ASSERT_FAIL,
    ),
    "zero-division": (
        """\
def main():
    a = 10
    b = 0
    return a // b
""",
        ZeroDivisionError, BugKind.DIV_BY_ZERO,
    ),
    "index-error": (
        """\
def main():
    xs = [1, 2, 3]
    i = 5
    return xs[i]
""",
        IndexError, BugKind.OUT_OF_BOUNDS,
    ),
}


class TestDifferentialExceptions:
    @pytest.mark.parametrize("name", sorted(EXCEPTION_PROGRAMS))
    def test_exception_maps_to_bug_kind(self, name):
        source, exc_type, bug_kind = EXCEPTION_PROGRAMS[name]
        with pytest.raises(exc_type):
            run_cpython(source)
        state = run_ir(source)
        assert state.status == "bug"
        assert state.bug.kind is bug_kind


class TestThreading:
    def test_thread_create_join_and_locks(self):
        # Not differential (CPython threads are nondeterministic); the
        # executor's default round-robin makes this deterministic.
        source = """\
import threading

lock = threading.Lock()
TOTAL = 0


def worker(n):
    global TOTAL
    lock.acquire()
    TOTAL = TOTAL + n
    lock.release()
    return 0


def main():
    t1 = threading.Thread(target=worker, args=(10,))
    t2 = threading.Thread(target=worker, args=(32,))
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    return TOTAL
"""
        state = run_ir(source)
        assert state.status == "exited"
        assert state.exit_code == 42

    def test_with_lock_block(self):
        source = """\
import threading

lock = threading.Lock()


def main():
    x = 0
    with lock:
        x = 7
    return x
"""
        state = run_ir(source)
        assert state.exit_code == 7


# ---------------------------------------------------------------------------
# Golden IR: the lowering itself is part of the contract.
# ---------------------------------------------------------------------------


GOLDEN_SOURCE = """\
def add(a, b):
    return a + b


def main():
    x = 3
    if x > 1:
        x = add(x, 4)
    return x
"""

GOLDEN_ADD = """\
func add(a, b) {
entry:
    %a.addr = alloca(1)
    store %a -> %a.addr
    %b.addr = alloca(1)
    store %b -> %b.addr
    %t1 = load %a.addr
    %t2 = load %b.addr
    %t3 = %t1 + %t2
    ret %t3
}"""

GOLDEN_MAIN = """\
func main() {
entry:
    %x.addr = alloca(1)
    store 3 -> %x.addr
    %t1 = load %x.addr
    %t2 = %t1 > 1
    br %t2, if.then1, if.end2
if.then1:
    %t3 = load %x.addr
    %t4 = call &add(%t3, 4)
    store %t4 -> %x.addr
    br if.end2
if.end2:
    %t5 = load %x.addr
    ret %t5
}"""


class TestGoldenIR:
    def test_lowering_matches_golden(self):
        module = compile_python_source(GOLDEN_SOURCE, "golden")
        assert format_function(module.functions["add"]).rstrip() == GOLDEN_ADD
        assert format_function(module.functions["main"]).rstrip() == GOLDEN_MAIN

    def test_same_allocas_as_minic_compiler(self):
        # The frontend mirrors lang/compiler.py's lowering discipline: one
        # alloca per local, named <var>.addr, loads/stores per access.
        from repro import ir

        module = compile_python_source(GOLDEN_SOURCE, "golden")
        allocas = [
            instr.dst.name
            for _, instr in module.functions["main"].iter_instructions()
            if isinstance(instr, ir.Alloc)
        ]
        assert allocas == ["x.addr"]


# ---------------------------------------------------------------------------
# Precise rejection: out-of-subset constructs must raise, never miscompile.
# ---------------------------------------------------------------------------


REJECTED = [
    ("floats", "def main():\n    return 1.5\n", "Constant"),
    ("strings-as-values", 'def main():\n    x = "ab"\n    return 0\n', ""),
    ("dicts", "def main():\n    d = {}\n    return 0\n", "Dict"),
    ("try-except",
     "def main():\n    try:\n        return 1\n    except Exception:\n"
     "        return 2\n", "Try"),
    ("classes", "class C:\n    pass\ndef main():\n    return 0\n",
     "ClassDef"),
    ("lambdas", "def main():\n    f = lambda x: x\n    return 0\n",
     "Lambda"),
    ("imports", "import random\ndef main():\n    return 0\n", "random"),
    ("from-imports", "from os import getenv\ndef main():\n    return 0\n",
     "ImportFrom"),
    ("default-args", "def f(a=1):\n    return a\ndef main():\n"
     "    return f()\n", "default"),
    ("starargs", "def f(*a):\n    return 0\ndef main():\n    return f()\n",
     ""),
    ("kwargs-call", "def f(a):\n    return a\ndef main():\n"
     "    return f(a=1)\n", "keyword"),
    ("while-else", "def main():\n    while 0:\n        pass\n    else:\n"
     "        return 1\n", "else"),
    ("fstrings", 'def main():\n    x = f"{1}"\n    return 0\n', ""),
    ("slices", "def main():\n    xs = [1, 2]\n    return xs[0:1]\n",
     "Slice"),
    ("nonlocal", "def main():\n    def g():\n        nonlocal x\n"
     "    return 0\n", ""),
    ("unknown-builtin", "def main():\n    return abs(-1)\n", "abs"),
    ("range-zero-step",
     "def main():\n    for i in range(0, 5, 0):\n        pass\n"
     "    return 0\n", "step"),
]


class TestRejection:
    @pytest.mark.parametrize("name,source,needle",
                             [(n, s, m) for n, s, m in REJECTED],
                             ids=[n for n, _, _ in REJECTED])
    def test_unsupported_raises_with_position(self, name, source, needle):
        with pytest.raises(UnsupportedPythonError) as info:
            compile_python_source(source, "t")
        message = str(info.value)
        assert "line" in message
        assert info.value.line > 0
        if needle:
            assert needle.lower() in message.lower()

    def test_syntax_error_is_compile_error(self):
        with pytest.raises(PythonCompileError) as info:
            compile_python_source("def main(:\n    pass\n", "t")
        assert "line 1" in str(info.value)

    def test_missing_main_rejected(self):
        with pytest.raises(PythonCompileError, match="main"):
            compile_python_source("def helper():\n    return 0\n", "t")

    def test_arity_mismatch_rejected(self):
        source = "def f(a, b):\n    return a\ndef main():\n    return f(1)\n"
        with pytest.raises(FrontendError, match="argument"):
            compile_python_source(source, "t")

    def test_unknown_name_rejected(self):
        with pytest.raises(FrontendError, match="nope"):
            compile_python_source("def main():\n    return nope\n", "t")

    def test_errors_are_frontend_errors(self):
        # The CLI catches FrontendError; both concrete types must be
        # subclasses or `repro synth prog.py` would traceback on bad input.
        assert issubclass(UnsupportedPythonError, FrontendError)
        assert issubclass(PythonCompileError, FrontendError)
