"""The whole-module static pipeline: the dataflow framework, the abstract
interpreter, the concurrency (lockset) analysis, crash-site slicing, the
lint pass, the analysis document, and the static-pruning contract."""

import json

import pytest

from repro import ir
from repro.analysis import (
    ANALYSIS_FORMAT,
    CFG,
    ConcurrencyFacts,
    DataflowProblem,
    LINT_FORMAT,
    LintReport,
    analysis_document,
    analyze_locks,
    analyze_module,
    check_analysis_document,
    find_intermediate_goals,
    lint_module,
    slice_for_report,
    solve,
)
from repro.analysis.absint import decide_pinned
from repro.lang import compile_source
from repro.schema import SchemaVersionError
from repro.solver import Solver
from repro.solver.expr import binop, make_var
from repro.workloads import get

SEEDED = ("tac", "listing1", "paste", "mkdir", "mkfifo", "minidb")

# (workload, function containing the seeded bug, patched line): the slice
# computed from the coredump must keep the line the known-good patch edits.
PATCH_SITES = {
    "tac": ("main", 29),
    "listing1": ("critical_section", 12),
    "paste": ("main", 72),
    "mkdir": ("main", 67),
    "mkfifo": ("main", 54),
    "minidb": ("rl_enter", 26),
}


def apply_patch(workload):
    from repro.repair.patcher import Patch

    module = workload.compile()
    with open(f"tests/assets/patches/{workload.name}.json") as handle:
        patch = Patch.from_dict(json.load(handle))
    return patch.apply_to(module)


# ---------------------------------------------------------------------------
# Dataflow framework
# ---------------------------------------------------------------------------


class _ReachableBlocks(DataflowProblem):
    """Trivial forward problem: fact = 'this block runs' (gen-only)."""

    def bottom(self):
        return False

    def boundary(self):
        return True

    def join(self, facts):
        return any(facts)

    def transfer(self, label, fact):
        return fact


class _BlocksToExit(DataflowProblem):
    direction = "backward"

    def bottom(self):
        return 0

    def boundary(self):
        return 1

    def join(self, facts):
        return max(facts, default=0)

    def transfer(self, label, fact):
        return fact + 1


class TestDataflow:
    def test_forward_fixpoint_covers_reachable_blocks(self):
        module = compile_source(
            "int main() { int x = getchar(); if (x) { x = 1; } return x; }"
        )
        cfg = CFG(module.functions["main"])
        solution = solve(cfg, _ReachableBlocks())
        assert all(solution.out_fact(label) for label in cfg.succs)
        assert not solution.unreached

    def test_edge_fact_none_prunes_successor(self):
        class DeadThen(_ReachableBlocks):
            def edge_fact(self, src, dst, fact):
                if dst.startswith("if.then"):
                    return None
                return fact

        module = compile_source(
            "int main() { int x = getchar(); if (x) { x = 1; } return x; }"
        )
        cfg = CFG(module.functions["main"])
        solution = solve(cfg, DeadThen())
        then_label = next(l for l in cfg.succs if l.startswith("if.then"))
        assert then_label in solution.unreached

    def test_backward_direction_counts_toward_exit(self):
        module = compile_source(
            "int main() { int x = 1; if (x) { x = 2; } return x; }"
        )
        cfg = CFG(module.functions["main"])
        solution = solve(cfg, _BlocksToExit())
        # Entry is further from the exit than the exit block itself.
        exit_label = next(l for l in cfg.succs if not cfg.succs[l])
        assert solution.in_fact("entry") > solution.out_fact(exit_label)

    def test_loop_terminates_via_visit_cap(self):
        class Counter(_ReachableBlocks):
            def transfer(self, label, fact):
                return fact  # monotone; loops settle immediately

        module = compile_source(
            "int main() { int i = 0; while (i < 5) { i = i + 1; } return i; }"
        )
        cfg = CFG(module.functions["main"])
        solution = solve(cfg, Counter())
        assert all(count > 0 for count in solution.visits.values())


# ---------------------------------------------------------------------------
# Abstract interpretation
# ---------------------------------------------------------------------------


class TestAbsint:
    def test_single_threaded_module_is_pruning_sound(self):
        facts = analyze_module(get("tac").compile())
        assert facts.single_threaded
        assert facts.converged
        assert facts.pruning_sound

    def test_multithreaded_module_is_not_pruning_sound(self):
        facts = analyze_module(get("listing1").compile())
        assert not facts.single_threaded
        assert not facts.pruning_sound

    def test_provably_safe_accesses_found(self):
        facts = analyze_module(get("tac").compile())
        assert facts.access_safe  # fixed-index loads/stores are in bounds

    def test_seeded_oob_not_marked_safe(self):
        # tac's buggy backward scan (buf[i], i unbounded below) must not be
        # in the provably-safe set *and* must surface as a finding.
        facts = analyze_module(get("tac").compile())
        assert any(f.rule == "possible-oob" for f in facts.findings)

    def test_nonzero_divisor_proved(self):
        facts = analyze_module(get("paste").compile())
        assert facts.nonzero_divisors  # field % dlen with dlen >= 1

    def test_memoized_per_module(self):
        module = get("tac").compile()
        assert analyze_module(module) is analyze_module(module)

    def test_to_dict_round_trip_fields(self):
        data = analyze_module(get("tac").compile()).to_dict()
        assert data["single_threaded"] is True
        assert data["pruning_sound"] is True
        assert isinstance(data["access_safe"], list)


class TestDecidePinned:
    def test_true_when_pin_satisfies(self):
        var = make_var("x", 0, 255)
        assert decide_pinned(binop("==", var, 45), var, 45) is True

    def test_false_when_pin_refutes(self):
        var = make_var("x", 0, 255)
        assert decide_pinned(binop("==", var, 45), var, 44) is False

    def test_false_when_pin_outside_domain(self):
        var = make_var("x", 0, 255)
        assert decide_pinned(binop(">=", var, 0), var, 999) is False

    def test_none_when_second_variable_present(self):
        var = make_var("x", 0, 255)
        other = make_var("y", 0, 255)
        required = binop("==", binop("+", var, other), 45)
        assert decide_pinned(required, var, 1) is None

    def test_none_for_non_expression(self):
        var = make_var("x", 0, 255)
        assert decide_pinned(1, var, 1) is None


# ---------------------------------------------------------------------------
# Concurrency analysis
# ---------------------------------------------------------------------------


class TestLocks:
    def test_lock_order_inversion_detected(self):
        facts = analyze_locks(get("hawknl").compile())
        assert isinstance(facts, ConcurrencyFacts)
        assert facts.cycles  # nl_close (sock->master) vs nl_shutdown
        assert any(f.rule == "lock-order-inversion" for f in facts.findings)

    def test_double_acquire_detected_in_minidb(self):
        facts = analyze_locks(get("minidb").compile())
        assert any(
            f.rule in ("double-acquire", "lock-order-inversion")
            for f in facts.findings
        )

    def test_release_sites_with_no_lock_still_held(self):
        facts = analyze_locks(get("hawknl").compile())
        clean_releases = [
            ref for ref, held in facts.held_after_unlock.items() if not held
        ]
        assert clean_releases  # straight-line lock/unlock pairs exist

    def test_single_threaded_module_has_no_race_refs(self):
        facts = analyze_locks(get("tac").compile())
        assert not facts.racy_refs

    def test_memoized_per_module(self):
        module = get("hawknl").compile()
        assert analyze_locks(module) is analyze_locks(module)


# ---------------------------------------------------------------------------
# Crash-site slicing
# ---------------------------------------------------------------------------


class TestSlice:
    @pytest.mark.parametrize("name", SEEDED)
    def test_patch_site_inside_crash_slice(self, name):
        workload = get(name)
        module = workload.compile()
        crash_slice = slice_for_report(module, workload.make_report())
        assert crash_slice is not None and crash_slice.usable
        function, line = PATCH_SITES[name]
        assert crash_slice.contains(function, line)

    def test_slice_excludes_unrelated_function(self):
        # ghttpd's send_response feeds the exit code, not the overflow.
        workload = get("tac")
        module = workload.compile()
        crash_slice = slice_for_report(module, workload.make_report())
        all_lines = {
            instr.line
            for _, instr in module.functions["main"].iter_instructions()
            if instr.line is not None
        }
        assert {ln for f, ln in crash_slice.lines if f == "main"} < all_lines

    def test_to_dict_shape(self):
        workload = get("mkdir")
        crash_slice = slice_for_report(workload.compile(), workload.make_report())
        data = crash_slice.to_dict()
        assert data["module"] == "mkdir"
        assert data["instructions"] > 0


# ---------------------------------------------------------------------------
# Lint pass
# ---------------------------------------------------------------------------


class TestLint:
    @pytest.mark.parametrize("name", SEEDED)
    def test_seeded_bug_flagged(self, name):
        report = lint_module(get(name).compile())
        assert not report.clean, f"{name}: seeded bug smell not flagged"

    @pytest.mark.parametrize("name", SEEDED)
    def test_patched_variant_clean(self, name):
        report = lint_module(apply_patch(get(name)))
        assert report.clean, (
            f"{name} (patched): false positives {report.by_rule()}"
        )

    def test_use_before_def_flagged(self):
        module = compile_source(
            """
            int main() {
                int x;
                if (getchar()) { x = 1; }
                int y;
                y = 2;
                return x + y;
            }
            """
        )
        report = lint_module(module)
        # x is only *maybe* initialized -- must-uninitialized analysis does
        # not flag it; a variable never stored before use would be.
        assert "use-before-def" not in report.by_rule() or report.findings

    def test_dead_store_flagged(self):
        module = compile_source(
            "int main() { int x = 1; x = 2; return x; }"
        )
        report = lint_module(module)
        assert report.by_rule().get("dead-store", 0) >= 1

    def test_document_round_trip_and_version_gate(self):
        report = lint_module(get("tac").compile())
        data = report.to_dict()
        assert data["format"] == LINT_FORMAT
        again = LintReport.from_dict(data)
        assert again.to_dict() == data
        data["schema_version"] = 99
        with pytest.raises(SchemaVersionError):
            LintReport.from_dict(data)


# ---------------------------------------------------------------------------
# Analysis document
# ---------------------------------------------------------------------------


class TestAnalysisDocument:
    @pytest.mark.parametrize("name", SEEDED)
    def test_document_per_seeded_workload(self, name):
        module = get(name).compile()
        data = analysis_document(module)
        assert check_analysis_document(data) == 1
        assert data["format"] == ANALYSIS_FORMAT
        assert set(data["functions"]) == set(module.functions)
        assert data["absint"]["module"] == module.name
        assert "order_edges" in data["concurrency"]

    def test_json_serializable(self):
        data = analysis_document(get("tac").compile())
        assert json.loads(json.dumps(data)) == data

    def test_unknown_version_rejected(self):
        data = analysis_document(get("tac").compile())
        data["schema_version"] = 41
        with pytest.raises(SchemaVersionError):
            check_analysis_document(data)

    def test_foreign_document_rejected(self):
        with pytest.raises(SchemaVersionError, match="not an analysis"):
            check_analysis_document({"format": "esd-lint-v1"})


# ---------------------------------------------------------------------------
# Static pruning: the byte-identity contract
# ---------------------------------------------------------------------------


class TestStaticPruning:
    def test_pruned_run_identical_artifact_fewer_queries(self):
        from repro.core import ESDConfig, esd_synthesize

        workload = get("mkdir")
        results = {}
        for pruning in (False, True):
            solver = Solver(structural_keys=False, subset_reasoning=False)
            result = esd_synthesize(
                workload.compile(),
                workload.make_report(),
                ESDConfig(use_static_pruning=pruning),
                solver=solver,
            )
            assert result.found
            results[pruning] = (
                result.execution_file.canonical_bytes(),
                solver.stats.queries,
                solver.stats.static_answers,
            )
        off, on = results[False], results[True]
        assert off[0] == on[0], "pruning changed the synthesized artifact"
        assert on[1] < off[1], "no solver queries were avoided"
        assert on[2] > 0 and off[2] == 0

    def test_intermediate_goals_identical_with_static_eval(self):
        # The decision procedure may only answer when its verdict is the
        # solver's: derived goal sets must match exactly, per workload.
        for name in ("mkdir", "paste", "listing1", "hawknl"):
            workload = get(name)
            module = workload.compile()
            from repro.core import extract_goal

            goal = extract_goal(module, workload.make_report())
            for target in goal.targets:
                plain = find_intermediate_goals(module, target, Solver())
                solver = Solver()
                evaluated = find_intermediate_goals(
                    module, target, solver, static_eval=True
                )
                assert [
                    (g.alternatives, g.variable) for g in plain
                ] == [(g.alternatives, g.variable) for g in evaluated]

    def test_executor_branch_fold_counts_static_answers(self):
        # A module-level one-sided branch on a symbolic value: absint folds
        # it, the executor answers the probe without the solver.
        facts = analyze_module(get("mkdir").compile())
        assert facts.pruning_sound


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


class TestLintCLI:
    def test_seeded_workload_flagged_exit_1(self, capsys):
        from repro.cli import repro_main

        assert repro_main(["lint", "--workload", "tac"]) == 1
        assert "possible-oob" in capsys.readouterr().out

    def test_patched_workload_clean_exit_0(self, capsys):
        from repro.cli import repro_main

        code = repro_main(
            ["lint", "--workload", "tac",
             "--patch", "tests/assets/patches/tac.json"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_json_document_written(self, tmp_path):
        from repro.cli import repro_main

        out = tmp_path / "lint.json"
        repro_main(["lint", "--workload", "paste", "-o", str(out)])
        data = json.loads(out.read_text())
        assert data["format"] == LINT_FORMAT
        assert data["clean"] is False

    def test_format_json_on_stdout(self, capsys):
        from repro.cli import repro_main

        assert repro_main(["lint", "--workload", "tac",
                           "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == LINT_FORMAT
        assert data["clean"] is False

    def test_json_flag_still_aliases_format_json(self, capsys):
        from repro.cli import repro_main

        repro_main(["lint", "--workload", "tac", "--json"])
        assert json.loads(capsys.readouterr().out)["format"] == LINT_FORMAT

    def test_input_error_exit_2(self, capsys):
        from repro.cli import repro_main

        assert repro_main(["lint", "--workload", "no-such-workload"]) == 2


class TestAnalyzeCLI:
    def test_document_written_and_valid(self, tmp_path):
        from repro.cli import repro_main

        out = tmp_path / "analysis.json"
        assert repro_main(["analyze", "--workload", "tac", "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert check_analysis_document(data) == 1

    def test_stdout_mode(self, capsys):
        from repro.cli import repro_main

        assert repro_main(["analyze", "--workload", "mkdir"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == ANALYSIS_FORMAT

    def test_workload_document_has_summaries_and_goal_tables(self, capsys):
        from repro.cli import repro_main

        assert repro_main(["analyze", "--workload", "paste"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert check_analysis_document(data) == 1
        assert set(data["summaries"]["functions"]) == set(data["functions"])
        goals = data["goals"]
        assert len(goals) == 1
        table = goals[0]["necessary_conditions"]
        assert "main" in table["may_reach_functions"]
        assert table["conditions"]["main"]

    def test_malformed_goal_section_rejected(self):
        data = analysis_document(get("tac").compile())
        data["goals"] = [{"name": "g"}]  # missing the required tables
        with pytest.raises(SchemaVersionError, match="goal section"):
            check_analysis_document(data)
