"""Unit tests for the symbolic expression DAG."""

import pytest

from repro.solver import BinExpr, binop, evaluate, make_var, negate, truthy, unop


class TestConstantFolding:
    def test_arith_folds_to_int(self):
        assert binop("+", 2, 3) == 5
        assert binop("-", 2, 3) == -1
        assert binop("*", 4, 3) == 12

    def test_division_truncates_toward_zero(self):
        assert binop("/", 7, 2) == 3
        assert binop("/", -7, 2) == -3
        assert binop("%", -7, 2) == -1
        assert binop("%", 7, -2) == 1

    def test_comparisons_fold(self):
        assert binop("<", 1, 2) == 1
        assert binop(">=", 1, 2) == 0

    def test_wraparound_32bit(self):
        assert binop("+", 2**31 - 1, 1) == -(2**31)
        assert binop("*", 2**16, 2**16) == 0

    def test_unary_folds(self):
        assert unop("-", 5) == -5
        assert unop("!", 0) == 1
        assert unop("!", 7) == 0
        assert unop("~", 0) == -1


class TestSimplification:
    def test_add_zero_identity(self):
        v = make_var("x", 0, 10)
        assert binop("+", v, 0) is v
        assert binop("+", 0, v) is v

    def test_mul_identities(self):
        v = make_var("y", 0, 10)
        assert binop("*", v, 1) is v
        assert binop("*", v, 0) == 0

    def test_sub_self_is_zero(self):
        v = make_var("z", 0, 10)
        assert binop("-", v, v) == 0

    def test_eq_self_is_true(self):
        v = make_var("w", 0, 10)
        assert binop("==", v, v) == 1
        assert binop("<", v, v) == 0

    def test_and_short_circuit_fold(self):
        v = make_var("a", 0, 10)
        cond = binop("==", v, 3)
        assert binop("&&", 0, cond) == 0
        assert binop("||", 1, cond) == 1

    def test_and_true_keeps_other_side(self):
        v = make_var("b", 0, 10)
        cond = binop("==", v, 3)
        assert binop("&&", 1, cond) is cond


class TestInterningAndNegation:
    def test_structurally_equal_interned(self):
        v = make_var("p", 0, 5)
        e1 = binop("+", v, 7)
        e2 = binop("+", v, 7)
        assert e1 is e2

    def test_commutative_canonicalization(self):
        v = make_var("q", 0, 5)
        assert binop("+", 3, v) is binop("+", v, 3)

    def test_negate_comparison_flips_op(self):
        v = make_var("r", 0, 5)
        negated = negate(binop("<", v, 3))
        assert isinstance(negated, BinExpr)
        assert negated.op == ">="

    def test_double_negation_of_comparison(self):
        v = make_var("s", 0, 5)
        cond = binop("==", v, 2)
        assert negate(negate(cond)) is cond

    def test_truthy_wraps_arith(self):
        v = make_var("t", 0, 5)
        wrapped = truthy(binop("+", v, 1))
        assert isinstance(wrapped, BinExpr)
        assert wrapped.op == "!="

    def test_truthy_of_comparison_is_noop(self):
        v = make_var("u", 0, 5)
        cond = binop(">", v, 2)
        assert truthy(cond) is cond


class TestEvaluate:
    def test_evaluate_simple(self):
        v = make_var("m", 0, 255)
        expr = binop("==", binop("+", v, 1), 10)
        assert evaluate(expr, {"m": 9}) == 1
        assert evaluate(expr, {"m": 3}) == 0

    def test_evaluate_nested_logic(self):
        a = make_var("aa", 0, 9)
        b = make_var("bb", 0, 9)
        expr = binop("&&", binop("<", a, b), binop("!=", b, 5))
        assert evaluate(expr, {"aa": 1, "bb": 4}) == 1
        assert evaluate(expr, {"aa": 1, "bb": 5}) == 0

    def test_evaluate_division_by_zero_raises(self):
        v = make_var("dd", 0, 9)
        expr = binop("/", 10, v)
        with pytest.raises(ZeroDivisionError):
            evaluate(expr, {"dd": 0})

    def test_variables_collected(self):
        a = make_var("v1", 0, 1)
        b = make_var("v2", 0, 1)
        expr = binop("+", binop("*", a, 2), b)
        names = {v.name for v in expr.variables()}
        assert names == {"v1", "v2"}
