"""Schema versioning: round-trips and unknown-version rejection for every
persisted document (coredumps, bug reports, execution files, triage
databases, job specs/records)."""

import pytest

from repro.api.jobs import JobRecord, JobSpec, SpecError
from repro.core import ExecutionFile, TriageDatabase
from repro.coredump import BugReport, Coredump
from repro.schema import SchemaVersionError, check_schema_version
from repro.workloads import get


@pytest.fixture(scope="module")
def report():
    return get("tac").make_report()


@pytest.fixture(scope="module")
def execution():
    workload = get("tac")
    from repro.api import ReproSession

    result = ReproSession(workload.compile(), workers=1).synthesize(
        workload.make_report()
    )
    assert result.found
    return result.execution_file


class TestCheckHelper:
    def test_missing_version_means_one(self):
        assert check_schema_version({}, 1, "thing") == 1

    def test_matching_version_passes(self):
        assert check_schema_version({"schema_version": 1}, 1, "thing") == 1

    def test_unknown_version_rejected_with_kind_in_message(self):
        with pytest.raises(SchemaVersionError, match="coredump.*99"):
            check_schema_version({"schema_version": 99}, 1, "coredump")

    def test_non_integer_version_rejected(self):
        with pytest.raises(SchemaVersionError):
            check_schema_version({"schema_version": "2"}, 1, "thing")


class TestCoredump:
    def test_round_trip(self, report):
        dump = report.coredump
        data = dump.to_dict()
        assert data["schema_version"] == 1
        again = Coredump.from_dict(data)
        assert again.to_dict() == data

    def test_unknown_version_rejected(self, report):
        data = report.coredump.to_dict()
        data["schema_version"] = 7
        with pytest.raises(SchemaVersionError, match="coredump"):
            Coredump.from_dict(data)

    def test_legacy_unversioned_accepted(self, report):
        data = report.coredump.to_dict()
        del data["schema_version"]
        assert Coredump.from_dict(data).program == report.coredump.program


class TestBugReport:
    def test_round_trip(self, report):
        data = report.to_dict()
        assert data["schema_version"] == 1
        again = BugReport.from_dict(data)
        assert again.to_dict() == data

    def test_unknown_version_rejected(self, report):
        data = report.to_dict()
        data["schema_version"] = 12
        with pytest.raises(SchemaVersionError, match="bug report"):
            BugReport.from_dict(data)


class TestExecutionFile:
    def test_round_trip(self, execution, tmp_path):
        data = execution.to_dict()
        assert data["schema_version"] == 1
        again = ExecutionFile.from_dict(data)
        assert again.to_dict() == data
        path = tmp_path / "exec.json"
        execution.save(path)
        assert ExecutionFile.load(path).fingerprint() == (
            execution.fingerprint()
        )

    def test_unknown_version_rejected(self, execution):
        data = execution.to_dict()
        data["schema_version"] = 3
        with pytest.raises(SchemaVersionError, match="execution file"):
            ExecutionFile.from_dict(data)

    def test_canonical_bytes_deterministic_and_timing_free(self, execution):
        first = execution.canonical_bytes()
        # Wall-clock timing must not leak into the content address.
        execution.synthesis_seconds += 42.0
        assert execution.canonical_bytes() == first
        # The regular serialization still carries it.
        assert execution.to_dict()["synthesis_seconds"] > 42.0


class TestTriageDatabase:
    def test_round_trip_preserves_ids_and_duplicates(self, execution,
                                                     tmp_path):
        db = TriageDatabase()
        bug_id, is_new = db.submit(execution)
        assert is_new
        again_id, again_new = db.submit(execution)
        assert again_id == bug_id and not again_new
        path = tmp_path / "triage.json"
        db.save(path)
        loaded = TriageDatabase.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0].bug_id == bug_id
        assert loaded.entries[0].duplicates == 1
        # Dedup still works against the reloaded database.
        dup_id, dup_new = loaded.submit(execution)
        assert dup_id == bug_id and not dup_new

    def test_unknown_version_rejected(self, execution, tmp_path):
        db = TriageDatabase()
        db.submit(execution)
        data = db.to_dict()
        data["schema_version"] = 9
        with pytest.raises(SchemaVersionError, match="triage database"):
            TriageDatabase.from_dict(data)

    def test_foreign_document_rejected(self):
        with pytest.raises(SchemaVersionError, match="not a triage database"):
            TriageDatabase.from_dict({"format": "something-else"})

    def test_v2_round_trips_repair_outcome(self, execution):
        db = TriageDatabase()
        bug_id, _ = db.submit(execution)
        db.record_repair(bug_id, "ab" * 32, verified=True)
        data = db.to_dict()
        assert data["schema_version"] == 2
        again = TriageDatabase.from_dict(data)
        entry = again.entry(bug_id)
        assert entry.patch_digest == "ab" * 32
        assert entry.patched
        assert again.patched_count == 1
        assert again.to_dict() == data

    def test_legacy_v1_loads_as_unpatched(self, execution):
        db = TriageDatabase()
        bug_id, _ = db.submit(execution)
        data = db.to_dict()
        data["schema_version"] = 1
        for entry in data["entries"]:
            del entry["patch_digest"]
            del entry["patch_verified"]
        again = TriageDatabase.from_dict(data)
        entry = again.entry(bug_id)
        assert entry.patch_digest is None
        assert not entry.patched
        assert again.patched_count == 0

    def test_merge_carries_repair_outcome(self, execution):
        shard = TriageDatabase()
        bug_id, _ = shard.submit(execution)
        shard.record_repair(bug_id, "cd" * 32, verified=True)
        central = TriageDatabase()
        central.submit(execution)
        mapping = central.merge(shard)
        assert central.entry(mapping[bug_id]).patched


class TestJobDocuments:
    def test_spec_round_trip_and_digest_stability(self, report):
        spec = JobSpec(report=report, source="int main() { return 0; }",
                       program_name="prog", priority=3)
        data = spec.to_dict()
        assert data["schema_version"] == 1
        again = JobSpec.from_dict(data)
        assert again.digest() == spec.digest()
        assert again.to_dict() == data

    def test_spec_unknown_version_rejected(self, report):
        data = JobSpec(workload="tac").to_dict()
        data["schema_version"] = 4
        with pytest.raises(SchemaVersionError, match="job spec"):
            JobSpec.from_dict(data)

    def test_spec_validation(self, report):
        with pytest.raises(SpecError):
            JobSpec().validate()  # neither source nor workload
        with pytest.raises(SpecError):
            JobSpec(source="x", workload="tac").validate()  # both
        with pytest.raises(SpecError):
            JobSpec(source="int main() {}").validate()  # no report

    def test_repair_spec_round_trip(self, report):
        spec = JobSpec(report=report, source="int main() { return 0; }",
                       program_name="prog", kind="repair",
                       repair_config={"max_suspects": 3})
        data = spec.to_dict()
        assert data["kind"] == "repair"
        again = JobSpec.from_dict(data)
        assert again.kind == "repair"
        assert again.repair_config == {"max_suspects": 3}
        assert again.digest() == spec.digest()
        # A repair spec and the identical synth spec are different jobs.
        synth = JobSpec(report=report, source="int main() { return 0; }",
                        program_name="prog")
        assert synth.digest() != spec.digest()

    def test_repair_spec_validation(self):
        with pytest.raises(SpecError, match="kind"):
            JobSpec(workload="tac", kind="mystery").validate()
        with pytest.raises(SpecError, match="repair_config"):
            JobSpec(workload="tac", repair_config={}).validate()

    def test_record_round_trip(self):
        record = JobRecord("j00001-abcd0123", "f" * 64, priority=1)
        record.transition("STATIC")
        record.transition("SEARCHING")
        record.transition("FOUND", reason="goal")
        data = record.to_dict()
        again = JobRecord.from_dict(data)
        assert again.state == "FOUND"
        assert again.terminal
        assert [e.kind for e in again.events].count("state") == 3
        assert again.to_dict() == data
