"""Snapshot layer: ExecutionState serialization round-trips faithfully.

The satellite requirement: serialize/deserialize mid-exploration states --
symbolic memory, mutex records, multi-thread states -- and continued
exploration from a restored frontier must be identical to the
never-snapshotted run.
"""

import json

import pytest

from repro.core import ESDConfig, build_search_setup, execution_file_from_state
from repro.distrib.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    restore_states,
    snapshot_states,
    verify_roundtrip,
)
from repro.search import SearchBudget, explore, explore_frontier
from repro.solver.expr import Var
from repro.workloads import get


def _mid_exploration_frontier(name: str, instructions: int = 800,
                              config: ESDConfig = None):
    """Run a real synthesis partway and hand back its live frontier."""
    workload = get(name)
    module = workload.compile()
    report = workload.make_report()
    setup = build_search_setup(module, report, config or ESDConfig())
    budget = SearchBudget(max_instructions=instructions, max_seconds=60.0)
    outcome = explore(
        setup.executor, setup.searcher, setup.executor.initial_state(),
        setup.goal.matches, budget,
    )
    assert outcome.reason == "budget", "partial run must stop on budget"
    states = setup.searcher.drain()
    assert states, "partial run must leave a frontier"
    return states


class TestRoundTripFidelity:
    def test_single_threaded_symbolic_states(self):
        # ghttpd frontiers carry symbolic buffers, path constraints, and a
        # last-model witness.
        for state in _mid_exploration_frontier("ghttpd"):
            verify_roundtrip(state)

    def test_multi_threaded_states_with_mutexes(self):
        # minidb/hawknl frontiers carry several threads, held/contended
        # mutex records, sync logs, segments, and deadlock-policy snapshot
        # maps (states nested inside states).
        for name in ("minidb", "hawknl"):
            states = _mid_exploration_frontier(name)
            assert any(len(s.threads) > 1 for s in states)
            assert any(s.mutexes for s in states)
            for state in states:
                verify_roundtrip(state)

    def test_blocked_threads_and_replay_flags_survive(self):
        states = _mid_exploration_frontier("hawknl", instructions=1500)
        blocked = [
            s for s in states
            for t in s.threads.values() if t.status == "blocked"
        ]
        assert blocked, "expected some frontier states with blocked threads"
        for state in blocked:
            restored = restore_states(snapshot_states([state]))[0]
            for tid, thread in state.threads.items():
                twin = restored.threads[tid]
                assert twin.status == thread.status
                assert twin.blocked_on == thread.blocked_on
                assert twin.replaying == thread.replaying

    def test_race_policy_metadata_survives(self):
        # The race scheduler stores a dict of per-cell lockset records
        # (frozen dataclasses) in state.meta; a race-bug synthesis through
        # the pool must be able to snapshot it.
        config = ESDConfig(with_race_detection=True)
        states = _mid_exploration_frontier("hawknl", instructions=1500,
                                           config=config)
        with_table = [s for s in states if isinstance(s.meta.get("eraser"), dict)]
        assert with_table, "race detection must populate the lockset table"
        for state in with_table:
            verify_roundtrip(state)
            restored = restore_states(snapshot_states([state]))[0]
            assert restored.meta["eraser"] == state.meta["eraser"]

    def test_payload_is_pure_json(self):
        states = _mid_exploration_frontier("minidb")
        payload = snapshot_states(states)
        blob = json.dumps(payload)  # raises if anything non-JSON leaked in
        reloaded = json.loads(blob)
        assert reloaded["format"] == SNAPSHOT_FORMAT
        restored = restore_states(reloaded)
        assert len(restored) == len(states)
        # Re-encoding the restored batch reproduces the document exactly.
        assert snapshot_states(restored) == payload

    def test_restored_siblings_share_variables(self):
        states = _mid_exploration_frontier("hawknl", instructions=1500)
        assert len(states) >= 2
        restored = restore_states(snapshot_states(states))
        vars_by_name = {}
        for state in restored:
            for constraint in state.constraints:
                for var in constraint.variables():
                    vars_by_name.setdefault(var.name, set()).add(id(var))
        shared = [ids for ids in vars_by_name.values() if len(ids) > 0]
        assert shared
        # One Var object per (name, domain) across the whole batch.
        assert all(len(ids) == 1 for ids in vars_by_name.values())


class TestContinuedExploration:
    def test_identical_continuation_vs_uninterrupted(self):
        """Snapshot mid-search, restore into a *fresh* stack, continue: the
        outcome must match the never-snapshotted run exactly.

        Uses the deterministic BFS strategy so pick order is a pure
        function of the frontier (no RNG to carry across the snapshot).
        """
        config = ESDConfig(strategy="bfs")
        workload = get("minidb")
        module = workload.compile()
        report = workload.make_report()

        # Uninterrupted reference run.
        ref = build_search_setup(module, report, config)
        ref_outcome = explore(
            ref.executor, ref.searcher, ref.executor.initial_state(),
            ref.goal.matches, SearchBudget(max_seconds=120.0),
        )
        assert ref_outcome.reason == "goal"

        # Interrupted run: stop partway, snapshot, restore, continue.
        part1 = build_search_setup(module, report, config)
        cut = 1024
        first = explore(
            part1.executor, part1.searcher, part1.executor.initial_state(),
            part1.goal.matches,
            SearchBudget(max_instructions=cut, max_seconds=120.0),
        )
        assert first.reason == "budget"
        payload = snapshot_states(part1.searcher.drain())

        part2 = build_search_setup(module, report, config)
        second = explore_frontier(
            part2.executor, part2.searcher, restore_states(payload),
            part2.goal.matches, SearchBudget(max_seconds=120.0),
            count_frontier=False,
        )
        assert second.reason == "goal"

        # Same goal, same manifestation...
        assert second.goal_state.bug.ref == ref_outcome.goal_state.bug.ref
        # ...same remaining work (the continuation neither redid nor skipped
        # exploration)...
        assert (first.stats.instructions + second.stats.instructions
                == ref_outcome.stats.instructions)
        # ...and the same synthesized artifact.
        ref_file = execution_file_from_state(
            module.name, ref_outcome.goal_state, ref.executor.solver
        )
        cont_file = execution_file_from_state(
            module.name, second.goal_state, part2.executor.solver
        )
        assert cont_file.fingerprint() == ref_file.fingerprint()


class TestFormatContract:
    def test_unknown_format_rejected(self):
        with pytest.raises(SnapshotError, match="unsupported snapshot format"):
            restore_states({"format": "bogus-v9", "exprs": [], "states": []})

    def test_unserializable_meta_is_an_explicit_error(self):
        states = _mid_exploration_frontier("ghttpd", instructions=200)
        states[0].meta["rogue"] = object()
        with pytest.raises(SnapshotError, match="meta value"):
            snapshot_states([states[0]])

    def test_variables_keep_domains(self):
        states = _mid_exploration_frontier("ghttpd")
        restored = restore_states(snapshot_states(states))
        for state in restored:
            for constraint in state.constraints:
                for var in constraint.variables():
                    assert isinstance(var, Var)
                    assert (var.lo, var.hi) == (0, 255)
