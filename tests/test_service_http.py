"""The `repro serve` wire surface: HTTP endpoints, error mapping, the
spool-directory mode, and the CLI client commands against a live daemon."""

import json
import time

import pytest

from repro.api import ReproSession
from repro.api.jobs import CANCELLED, FOUND, SEARCHING, JobSpec
from repro.cli import repro_main
from repro.core import ESDConfig, ExecutionFile
from repro.service import ReproService
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import ServiceDaemon
from repro.workloads import get
from repro.workloads.ghttpd import hard_workload


@pytest.fixture(scope="module")
def daemon():
    service = ReproService(max_workers=2)
    daemon = ServiceDaemon(service, port=0)  # ephemeral port
    daemon.start()
    yield daemon
    daemon.stop(graceful=False)


@pytest.fixture(scope="module")
def client(daemon):
    return ServiceClient(daemon.url)


def hard_spec(description="http-hard"):
    workload = hard_workload(4)
    report = workload.make_report()
    report.description = description
    config = ESDConfig()
    config.budget.max_seconds = 300.0
    config.budget.max_instructions = 100_000_000
    return JobSpec(report=report, source=workload.source,
                   program_name=workload.name, config=config)


def wait_for_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.job(job_id)["state"] == state:
            return True
        time.sleep(0.02)
    return False


class TestWireApi:
    def test_healthz(self, client):
        health = client.health()
        assert health["ok"] is True
        assert "stats" in health

    def test_submit_poll_fetch_playback_byte_identity(self, client):
        """The CI smoke in test form: submit over HTTP, poll to FOUND,
        fetch the artifact, play it back -- and the bytes match a direct
        in-process synthesis."""
        workload = get("tac")
        report = workload.make_report()
        record = client.submit(JobSpec(workload="tac", report=report))
        final = client.wait(record["job_id"], timeout=120)
        assert final["state"] == FOUND
        fetched = client.fetch_job_artifact(record["job_id"])

        direct = ReproSession(workload.compile(), workers=1).synthesize(report)
        assert fetched == direct.execution_file.canonical_bytes()

        execution = ExecutionFile.from_dict(json.loads(fetched))
        playback = ReproSession(workload.compile()).play_back(execution)
        assert playback.bug_reproduced

    def test_events_endpoint_with_since(self, client):
        record = client.submit(JobSpec(workload="mkdir"))
        client.wait(record["job_id"], timeout=120)
        events = client.events(record["job_id"])
        states = [e["state"] for e in events if e["kind"] == "state"]
        assert states[0] == "QUEUED" and states[-1] == FOUND
        later = client.events(record["job_id"], since=events[0]["seq"])
        assert all(e["seq"] > events[0]["seq"] for e in later)

    def test_dedup_over_http(self, client):
        first = client.submit(JobSpec(workload="mkfifo"))
        second = client.submit(JobSpec(workload="mkfifo"))
        assert second["job_id"] == first["job_id"]

    def test_result_409_before_completion_then_cancel(self, client):
        record = client.submit(hard_spec("result-409"))
        assert wait_for_state(client, record["job_id"], SEARCHING)
        with pytest.raises(ServiceClientError) as err:
            client.result(record["job_id"])
        assert err.value.status == 409
        with pytest.raises(ServiceClientError) as err:
            client.fetch_job_artifact(record["job_id"])
        assert err.value.status == 409
        cancelled = client.cancel(record["job_id"])
        final = client.wait(record["job_id"], timeout=30)
        assert final["state"] == CANCELLED
        assert cancelled["job_id"] == record["job_id"]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.job("j99999-cafebabe")
        assert err.value.status == 404

    def test_unknown_artifact_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.fetch_artifact("0" * 64)
        assert err.value.status == 404

    def test_malformed_spec_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit({"format": "esd-jobspec-v1", "schema_version": 1,
                           "program": {}})
        assert err.value.status == 400

    def test_unknown_schema_version_400(self, client):
        spec = JobSpec(workload="tac").to_dict()
        spec["schema_version"] = 99
        with pytest.raises(ServiceClientError) as err:
            client.submit(spec)
        assert err.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client._json("GET", "/v2/nope")
        assert err.value.status == 404

    def test_job_listing(self, client):
        record = client.submit(JobSpec(workload="tac"))
        jobs = client.jobs()
        assert any(j["job_id"] == record["job_id"] for j in jobs)


class TestSpoolMode:
    def test_spool_roundtrip(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        service = ReproService(max_workers=1)
        daemon = ServiceDaemon(service, port=0, spool_dir=spool)
        daemon.start()
        try:
            (spool / "bug-1.json").write_text(
                json.dumps(JobSpec(workload="tac").to_dict())
            )
            deadline = time.monotonic() + 120
            result_path = spool / "bug-1.result.json"
            while not result_path.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert result_path.exists(), "spool job never produced a result"
            record = json.loads(result_path.read_text())
            assert record["state"] == FOUND
            assert (spool / "bug-1.json.submitted").exists()
            assert not (spool / "bug-1.json").exists()
        finally:
            daemon.stop(graceful=False)

    def test_spool_rejects_malformed_spec(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        service = ReproService(max_workers=1)
        daemon = ServiceDaemon(service, port=0, spool_dir=spool)
        daemon.start()
        try:
            (spool / "broken.json").write_text("{not json")
            deadline = time.monotonic() + 30
            error_path = spool / "broken.error.json"
            while not error_path.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert error_path.exists()
            assert "error" in json.loads(error_path.read_text())
            assert (spool / "broken.json.rejected").exists()
        finally:
            daemon.stop(graceful=False)


class TestCliClientCommands:
    def test_submit_status_fetch_play(self, daemon, tmp_path, capsys):
        workload = get("tac")
        program = tmp_path / "tac.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        out = tmp_path / "fetched.json"

        code = repro_main([
            "submit", str(dump), str(program), "--url", daemon.url,
            "--wait", "--json",
        ])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == FOUND

        assert repro_main(["status", record["job_id"], "--url",
                           daemon.url]) == 0
        assert "FOUND" in capsys.readouterr().out

        assert repro_main(["status", "--url", daemon.url]) == 0
        assert record["job_id"] in capsys.readouterr().out

        assert repro_main(["fetch", record["job_id"], "--url", daemon.url,
                           "-o", str(out)]) == 0
        capsys.readouterr()
        assert repro_main(["play", str(program), str(out)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_submit_workload_by_name(self, daemon, capsys):
        code = repro_main([
            "submit", "--workload", "mknod", "--url", daemon.url,
            "--wait", "--json",
        ])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["state"] == FOUND

    def test_submit_needs_a_program(self, daemon, capsys):
        assert repro_main(["submit", "--url", daemon.url]) == 2
        assert "coredump and a program" in capsys.readouterr().err

    def test_client_error_paths_exit_nonzero(self, daemon, tmp_path, capsys):
        assert repro_main(["fetch", "j00000-nope", "--url",
                           daemon.url]) == 1
        assert "404" in capsys.readouterr().err
        assert repro_main(["status", "j00000-nope", "--url",
                           daemon.url]) == 1

    def test_unreachable_service(self, capsys, tmp_path):
        assert repro_main(["status", "--url",
                           "http://127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestSpoolDedup:
    def test_identical_spool_files_each_get_a_result(self, tmp_path):
        """Two spec files with identical content dedupe to one job, but
        both promised .result.json files must be written."""
        spool = tmp_path / "spool"
        spool.mkdir()
        service = ReproService(max_workers=1)
        daemon = ServiceDaemon(service, port=0, spool_dir=spool)
        daemon.start()
        try:
            spec = json.dumps(JobSpec(workload="tac").to_dict())
            (spool / "first.json").write_text(spec)
            (spool / "second.json").write_text(spec)
            deadline = time.monotonic() + 120
            wanted = [spool / "first.result.json",
                      spool / "second.result.json"]
            while (not all(p.exists() for p in wanted)
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert all(p.exists() for p in wanted)
            first = json.loads(wanted[0].read_text())
            second = json.loads(wanted[1].read_text())
            assert first["job_id"] == second["job_id"]  # deduped
            assert first["state"] == FOUND
        finally:
            daemon.stop(graceful=False)

    def test_spool_result_survives_daemon_restart(self, tmp_path, monkeypatch):
        """A spec already renamed to .submitted whose result was never
        written is re-adopted by a restarted daemon (dedupe onto the
        recovered job) and still gets its .result.json.

        Deterministic by construction: the first daemon's search is gated
        on the service's own graceful-shutdown interrupt, so the stop is
        guaranteed to land mid-search regardless of machine speed -- no
        heavyweight workload racing a wall-clock poll."""
        import threading

        from repro.service import service as service_module
        from repro.store import ArtifactStore

        spool = tmp_path / "spool"
        spool.mkdir()
        root = tmp_path / "store"
        spec = json.dumps(JobSpec(workload="tac").to_dict())
        (spool / "slow.json").write_text(spec)

        service = ReproService(store=ArtifactStore(root), max_workers=1)
        real_search = service_module.search_from_setup
        search_entered = threading.Event()

        def gated_search(module, setup, config, **kwargs):
            # First (and only) search of the first daemon: report in, then
            # hold until shutdown(graceful=True) raises the interrupt flag.
            # The engine then observes should_stop() on its very first pick
            # and the job re-queues as resumable.
            if not search_entered.is_set():
                search_entered.set()
                service._interrupt.wait(timeout=60)
            return real_search(module, setup, config, **kwargs)

        monkeypatch.setattr(service_module, "search_from_setup", gated_search)
        daemon = ServiceDaemon(service, port=0, spool_dir=spool)
        daemon.start()
        assert search_entered.wait(timeout=60), "job never reached the search"
        deadline = time.monotonic() + 30
        while (not (spool / "slow.json.submitted").exists()
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert (spool / "slow.json.submitted").exists()
        daemon.stop(graceful=True)  # mid-search: job re-queues as resumable
        assert not (spool / "slow.result.json").exists()

        monkeypatch.setattr(service_module, "search_from_setup", real_search)
        revived = ReproService(store=ArtifactStore(root), max_workers=1)
        daemon2 = ServiceDaemon(revived, port=0, spool_dir=spool)
        daemon2.start()
        try:
            deadline = time.monotonic() + 120
            result = spool / "slow.result.json"
            while not result.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert result.exists(), "restarted daemon never wrote the result"
            assert json.loads(result.read_text())["state"] == FOUND
        finally:
            daemon2.stop(graceful=False)
