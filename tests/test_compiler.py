"""Unit tests for the MiniC -> IR compiler."""

import pytest

from repro import ir
from repro.lang import CompileError, compile_source
from repro.lang.compiler import compile_source as compile_minic

LISTING1 = """
int idx = 0;
int mode = 0;
mutex M1;
mutex M2;

void critical_section(int unused) {
    lock(M1);
    lock(M2);
    if (mode == 1 && idx == 1) {
        unlock(M1);
        lock(M1);
    }
    unlock(M2);
    unlock(M1);
}

int main() {
    if (getchar() == 'm') {
        idx = idx + 1;
    }
    char *env;
    env = getenv("mode");
    if (env[0] == 'Y') {
        mode = 1;
    } else {
        mode = 2;
    }
    int t1 = spawn(critical_section, 0);
    int t2 = spawn(critical_section, 0);
    join(t1);
    join(t2);
    return 0;
}
"""


class TestCompileBasics:
    def test_empty_main(self):
        module = compile_source("int main() { return 0; }")
        assert "main" in module.functions

    def test_module_is_verified(self):
        module = compile_source("int main() { return 0; }")
        ir.verify_module(module)  # does not raise

    def test_missing_main_rejected(self):
        with pytest.raises(ir.VerificationError):
            compile_source("int f() { return 0; }")

    def test_globals_compiled(self):
        module = compile_source("int g = 7;\nint main() { return g; }")
        assert module.globals["g"].init == [7]

    def test_mutex_global_flagged(self):
        module = compile_source("mutex m;\nint main() { lock(m); unlock(m); return 0; }")
        assert module.globals["m"].is_mutex

    def test_string_interning_deduplicates(self):
        module = compile_source(
            'int main() { getenv("x"); getenv("x"); getenv("y"); return 0; }'
        )
        strings = [n for n in module.globals if n.startswith(".str")]
        assert len(strings) == 2

    def test_locals_become_allocas(self):
        module = compile_source("int main() { int x = 1; return x; }")
        entry = module.functions["main"].blocks["entry"]
        allocs = [i for i in entry.instrs if isinstance(i, ir.Alloc)]
        assert len(allocs) == 1
        assert allocs[0].name == "x"

    def test_params_spilled_to_allocas(self):
        module = compile_source("int f(int a) { return a; }\nint main() { return f(1); }")
        entry = module.functions["f"].blocks["entry"]
        assert any(isinstance(i, ir.Store) for i in entry.instrs)

    def test_source_lines_preserved(self):
        module = compile_source("int main() {\nint x = 1;\nreturn x;\n}")
        entry = module.functions["main"].blocks["entry"]
        lines = {i.line for i in entry.instrs}
        assert 2 in lines

    def test_redeclaration_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int x; int x; return 0; }")

    def test_undefined_variable_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nope; }")

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int f(int a) { return a; }\nint main() { return f(); }")

    def test_builtin_arity_checked(self):
        with pytest.raises(CompileError):
            compile_source("int main() { getchar(1); return 0; }")


class TestControlFlow:
    def test_if_creates_branches(self):
        module = compile_source("int main() { if (1) { return 1; } return 0; }")
        func = module.functions["main"]
        terminators = [b.terminator for b in func.blocks.values()]
        assert any(isinstance(t, ir.CondBr) for t in terminators)

    def test_while_loop_shape(self):
        module = compile_source(
            "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }"
        )
        labels = set(module.functions["main"].blocks)
        assert any(label.startswith("while.head") for label in labels)
        assert any(label.startswith("while.body") for label in labels)

    def test_short_circuit_and_compiles_to_branches(self):
        module = compile_source(
            "int main() { int a = 1; int b = 2; if (a == 1 && b == 2) { return 1; } return 0; }"
        )
        func = module.functions["main"]
        condbrs = [
            b.terminator for b in func.blocks.values()
            if isinstance(b.terminator, ir.CondBr)
        ]
        assert len(condbrs) == 2  # one per conjunct

    def test_short_circuit_value_position(self):
        module = compile_source("int main() { int a = 1; int x = a == 1 || a == 2; return x; }")
        ir.verify_module(module)

    def test_break_targets_loop_end(self):
        module = compile_source(
            "int main() { while (1) { break; } return 0; }"
        )
        func = module.functions["main"]
        ends = [label for label in func.blocks if label.startswith("while.end")]
        assert len(ends) == 1

    def test_dead_code_after_return_is_parked(self):
        module = compile_source("int main() { return 1; return 2; }")
        ir.verify_module(module)


class TestSyncAndMemory:
    def test_spawn_join(self):
        module = compile_source(
            "void w(int a) { return; }\n"
            "int main() { int t = spawn(w, 1); join(t); return 0; }"
        )
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        assert any(isinstance(i, ir.ThreadCreate) for i in instrs)
        assert any(isinstance(i, ir.ThreadJoin) for i in instrs)

    def test_lock_unlock(self):
        module = compile_source("mutex m;\nint main() { lock(m); unlock(m); return 0; }")
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        kinds = [type(i) for i in instrs]
        assert ir.MutexLock in kinds
        assert ir.MutexUnlock in kinds

    def test_condvar_ops(self):
        module = compile_source(
            "mutex m;\ncond c;\n"
            "int main() { lock(m); wait(c, m); signal(c); broadcast(c); unlock(m); return 0; }"
        )
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        signals = [i for i in instrs if isinstance(i, ir.CondSignal)]
        assert [s.broadcast for s in signals] == [False, True]

    def test_malloc_free(self):
        module = compile_source("int main() { int *p = malloc(4); free(p); return 0; }")
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        heaps = [i for i in instrs if isinstance(i, ir.Alloc) and i.heap]
        assert len(heaps) == 1
        assert any(isinstance(i, ir.Free) for i in instrs)

    def test_array_index_load_store(self):
        module = compile_source("int a[4];\nint main() { a[1] = 5; return a[1]; }")
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        assert any(isinstance(i, ir.Gep) for i in instrs)

    def test_assert_statement(self):
        module = compile_source("int main() { int x = 1; assert(x == 1); return 0; }")
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        asserts = [i for i in instrs if isinstance(i, ir.Assert)]
        assert len(asserts) == 1
        assert "assert" in asserts[0].message

    def test_function_pointer(self):
        module = compile_source(
            "int f(int x) { return x + 1; }\n"
            "int main() { int *p = &f; return p(1); }"
        )
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        calls = [i for i in instrs if isinstance(i, ir.Call)]
        assert any(isinstance(c.callee, ir.Reg) for c in calls)

    def test_mutex_passed_by_address(self):
        module = compile_source(
            "mutex m;\n"
            "void f(int *mu) { lock(mu); unlock(mu); }\n"
            "int main() { f(m); return 0; }"
        )
        ir.verify_module(module)


class TestListing1:
    """The paper's running example (Listing 1) must compile cleanly."""

    def test_compiles_and_verifies(self):
        module = compile_minic(LISTING1, "listing1")
        ir.verify_module(module)

    def test_has_sync_instructions(self):
        module = compile_minic(LISTING1)
        instrs = [
            i for _, i in module.functions["critical_section"].iter_instructions()
        ]
        locks = [i for i in instrs if isinstance(i, ir.MutexLock)]
        unlocks = [i for i in instrs if isinstance(i, ir.MutexUnlock)]
        assert len(locks) == 3
        assert len(unlocks) == 3

    def test_env_intrinsics_present(self):
        module = compile_minic(LISTING1)
        instrs = [i for _, i in module.functions["main"].iter_instructions()]
        names = {i.name for i in instrs if isinstance(i, ir.Intrinsic)}
        assert {"getchar", "getenv"} <= names


class TestColumns:
    def test_compile_error_carries_column(self):
        import pytest

        from repro.lang import CompileError, compile_source

        with pytest.raises(CompileError) as info:
            compile_source("int main() { return nope; }")
        assert info.value.line == 1
        assert info.value.col == 21
        assert "line 1:21" in str(info.value)
