"""Property tests for the copy-on-write memory model: forked states must be
fully isolated -- a write in one state is never visible in the other.  This
invariant is what makes the paper's snapshot-based schedule search sound."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.symbex.memory import (
    AddressSpace,
    DoubleFree,
    InvalidFree,
    MemObject,
    OutOfBounds,
    UseAfterFree,
)


def space_with_objects(sizes):
    space = AddressSpace()
    for obj_id, size in enumerate(sizes, start=1):
        space.add(MemObject(obj_id, size, "heap", f"o{obj_id}"))
    return space


class TestBasics:
    def test_read_write_roundtrip(self):
        space = space_with_objects([4])
        space.write(1, 2, 99)
        assert space.read(1, 2) == 99

    def test_out_of_bounds_read(self):
        space = space_with_objects([4])
        with pytest.raises(OutOfBounds):
            space.read(1, 4)
        with pytest.raises(OutOfBounds):
            space.read(1, -1)

    def test_free_then_use(self):
        space = space_with_objects([4])
        space.free(1, 0)
        with pytest.raises(UseAfterFree):
            space.read(1, 0)
        with pytest.raises(DoubleFree):
            space.free(1, 0)

    def test_interior_free_rejected(self):
        space = space_with_objects([4])
        with pytest.raises(InvalidFree):
            space.free(1, 1)

    def test_global_free_rejected(self):
        space = AddressSpace()
        space.add(MemObject(1, 2, "global", "g"))
        with pytest.raises(InvalidFree):
            space.free(1, 0)


class TestForkIsolation:
    def test_write_after_fork_not_visible_in_parent(self):
        parent = space_with_objects([4])
        parent.write(1, 0, 10)
        child = parent.fork()
        child.write(1, 0, 20)
        assert parent.read(1, 0) == 10
        assert child.read(1, 0) == 20

    def test_parent_write_not_visible_in_child(self):
        parent = space_with_objects([4])
        child = parent.fork()
        parent.write(1, 3, 7)
        assert child.read(1, 3) == 0

    def test_free_isolated(self):
        parent = space_with_objects([4])
        child = parent.fork()
        child.free(1, 0)
        assert parent.read(1, 0) == 0  # parent unaffected
        with pytest.raises(UseAfterFree):
            child.read(1, 0)

    def test_grandchild_isolation(self):
        a = space_with_objects([2])
        b = a.fork()
        c = b.fork()
        a.write(1, 0, 1)
        b.write(1, 0, 2)
        c.write(1, 0, 3)
        assert (a.read(1, 0), b.read(1, 0), c.read(1, 0)) == (1, 2, 3)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(0, 7), st.integers(0, 255)),
            min_size=1, max_size=30,
        )
    )
    def test_random_write_interleavings_isolated(self, operations):
        """Replay random writes against three forked spaces and dict models;
        every space must match its model exactly."""
        base = space_with_objects([8])
        spaces = {"a": base, "b": base.fork(), "c": base.fork()}
        models = {name: {i: 0 for i in range(8)} for name in spaces}
        for name, offset, value in operations:
            spaces[name].write(1, offset, value)
            models[name][offset] = value
        for name in spaces:
            for offset in range(8):
                assert spaces[name].read(1, offset) == models[name][offset], (
                    name, offset,
                )


class TestStateForkIsolation:
    def test_forked_execution_states_do_not_share_writes(self):
        from repro.lang import compile_source
        from repro.symbex import ConcreteEnv, Executor, RecordedInputs

        module = compile_source("int g = 0;\nint main() { g = 1; return g; }")
        executor = Executor(module, env=ConcreteEnv(RecordedInputs()))
        state = executor.initial_state()
        fork = state.fork()
        # Run the original to completion; the fork must still see g == 0.
        final = executor.run_to_completion(state)
        assert final.exit_code == 1
        obj = fork.globals["g"]
        assert fork.address_space.read(obj, 0) == 0

    def test_fork_preserves_thread_positions(self):
        from repro.lang import compile_source
        from repro.symbex import ConcreteEnv, Executor, RecordedInputs

        module = compile_source(
            "int main() { int x = 0; x = x + 1; x = x + 2; return x; }"
        )
        executor = Executor(module, env=ConcreteEnv(RecordedInputs()))
        state = executor.initial_state()
        executor.step(state)
        fork = state.fork()
        assert fork.pc == state.pc
        executor.step(state)
        assert fork.pc != state.pc
