"""The solver acceleration layer: structural keys, counterexample cache,
model-reuse fast path, bounded interning, and the boost()-after-prune fix."""

import pytest

from repro.lang import compile_source
from repro.solver import (
    CounterexampleCache,
    Result,
    Solver,
    binop,
    intern_table_size,
    make_var,
    set_intern_limit,
    struct_key,
)
from repro.solver import expr as expr_mod
from repro.symbex import Executor


class TestStructuralKeys:
    def test_rebuilt_expressions_share_digests(self):
        # Two independently built Vars/exprs with the same names and
        # domains -- as two sessions or a recompiled module would produce.
        a1 = make_var("s0", 0, 255)
        a2 = make_var("s0", 0, 255)
        assert a1 is not a2 and a1.uid != a2.uid
        e1 = binop("==", binop("+", a1, 3), 10)
        e2 = binop("==", binop("+", a2, 3), 10)
        assert e1 is not e2
        assert struct_key(e1) == struct_key(e2)

    def test_different_domains_get_different_digests(self):
        assert struct_key(make_var("s1", 0, 255)) != struct_key(
            make_var("s1", 0, 127)
        )

    def test_minus_one_and_minus_two_do_not_collide(self):
        # CPython's hash(-1) == hash(-2); a naive digest made x == -1 and
        # x == -2 share a cache key, turning an UNSAT query into a cached
        # SAT answer (and vice versa).
        v = make_var("sneg", -10, 10)
        assert struct_key(binop("==", v, -1)) != struct_key(binop("==", v, -2))
        assert struct_key(make_var("sn2", -1, 10)) != struct_key(
            make_var("sn2", -2, 10)
        )
        solver = Solver()
        sat = solver.check([binop(">", v, -2), binop("==", v, -1)])
        assert sat.is_sat and sat.model["sneg"] == -1
        unsat = solver.check([binop(">", v, -2), binop("==", v, -2)])
        assert unsat.result is Result.UNSAT

    def test_cache_hits_across_independently_built_sets(self):
        solver = Solver()
        v1 = make_var("s2", 0, 255)
        first = solver.check([binop("==", v1, 7), binop("<", v1, 100)])
        assert first.is_sat
        nodes = solver.stats.search_nodes
        v2 = make_var("s2", 0, 255)  # fresh object, same structure
        second = solver.check([binop("==", v2, 7), binop("<", v2, 100)])
        assert second.is_sat and second.model["s2"] == 7
        assert solver.stats.cache_hits == 1
        assert solver.stats.search_nodes == nodes  # answered without solving

    def test_shared_cache_carries_across_solvers(self):
        cache = CounterexampleCache()
        first = Solver(cache=cache)
        v1 = make_var("s3", 0, 255)
        assert first.check([binop(">", v1, 250)]).is_sat
        second = Solver(cache=cache)
        v2 = make_var("s3", 0, 255)
        assert second.check([binop(">", v2, 250)]).is_sat
        assert second.stats.cache_hits == 1
        assert cache.stats.exact_hits == 1


class TestCounterexampleReasoning:
    def test_superset_of_unsat_is_unsat_without_solving(self):
        solver = Solver()
        x = make_var("u0", 0, 255)
        y = make_var("u1", 0, 255)
        core = [binop("<", x, 5), binop(">", x, 10)]
        assert solver.check(core).result is Result.UNSAT
        nodes = solver.stats.search_nodes
        # The extra constraint shares a variable with the core, so the whole
        # query is one component strictly containing the known-UNSAT set.
        superset = core + [binop("==", binop("+", x, y), 30)]
        assert solver.check(superset).result is Result.UNSAT
        assert solver.stats.unsat_superset_hits == 1
        assert solver.stats.search_nodes == nodes

    def test_subset_of_sat_reuses_the_model(self):
        solver = Solver()
        a = make_var("u2", 0, 100)
        b = make_var("u3", 0, 100)
        big = [
            binop(">", a, 3),
            binop("<", a, 10),
            binop("==", binop("+", a, b), 12),
        ]
        assert solver.check(big).is_sat
        nodes = solver.stats.search_nodes
        small = solver.check([binop(">", a, 3), binop("==", binop("+", a, b), 12)])
        assert small.is_sat
        assert solver.stats.sat_subset_hits == 1
        assert solver.stats.search_nodes == nodes
        # The reused model satisfies the subset query by construction.
        assert small.model["u2"] + small.model["u3"] == 12
        assert small.model["u2"] > 3

    def test_unknown_results_are_cached_and_budget_scoped(self):
        tiny = Solver(max_nodes=3)
        p = make_var("u4", 0, 10_000)
        q = make_var("u5", 0, 10_000)
        hard = [
            binop("==", binop("+", binop("*", p, 7), q), 9_999),
            binop(">", q, 5),
        ]
        assert tiny.check(hard).result is Result.UNKNOWN
        nodes = tiny.stats.search_nodes
        # Re-check: answered from the unknown cache, no budget re-burned.
        assert tiny.check(hard).result is Result.UNKNOWN
        assert tiny.stats.unknown_hits == 1
        assert tiny.stats.search_nodes == nodes
        # A solver with a *bigger* budget must not inherit the give-up.
        big = Solver(max_nodes=200_000, cache=tiny.cache)
        solution = big.check(hard)
        assert solution.result is Result.SAT
        # ...and its definite answer supersedes the remembered UNKNOWN.
        assert tiny.check(hard).is_sat

    def test_subset_hit_model_does_not_leak_foreign_variables(self):
        # The cached superset's model may assign variables outside the
        # queried component; if they leaked into check()'s merged model
        # they would clobber a sibling component's correct assignment.
        solver = Solver()
        a = make_var("lk0", 0, 100)
        x = make_var("lk1", 0, 100)
        # One *connected* set over both variables: its model assigns x=0.
        assert solver.check(
            [binop(">", a, 0), binop("<", binop("+", a, x), 10)]
        ).is_sat
        # New query: {a>0} hits as a SAT subset, {x==3} is its own
        # component whose assignment must survive the merge.
        solution = solver.check([binop("==", x, 3), binop(">", a, 0)])
        assert solution.is_sat
        assert solution.model["lk1"] == 3
        assert solution.model["lk0"] > 0

    def test_unsat_core_learned_later_beats_remembered_unknown(self):
        # The hard query is remembered as UNKNOWN; once a contained UNSAT
        # core is learned, re-checks must report the definite refutation,
        # not keep answering "possibly feasible" until the entry ages out.
        tiny = Solver(max_nodes=3)
        p = make_var("u6", 0, 10_000)
        q = make_var("u7", 0, 10_000)
        # p+q == 5 and p-q == 2 has no integer solution, but refuting it
        # takes search, not one propagation pass -- so the widened query
        # exhausts a 3-node budget.
        core = [
            binop("==", binop("+", p, q), 5),
            binop("==", binop("-", p, q), 2),
        ]
        hard = core + [binop("<", binop("*", p, 3), 100)]
        assert tiny.check(hard).result is Result.UNKNOWN
        assert Solver(cache=tiny.cache).check(core).result is Result.UNSAT
        assert tiny.check(hard).result is Result.UNSAT
        assert tiny.stats.unsat_superset_hits == 1

    def test_unknown_cache_is_bounded(self):
        cache = CounterexampleCache(unknown_capacity=4)
        for i in range(10):
            cache.insert_unknown(frozenset({i}), 100)
        assert len(cache._unknown) == 4

    def test_entry_store_is_bounded_with_index_cleanup(self):
        from repro.solver.solver_types import Solution

        cache = CounterexampleCache(capacity=4)
        for i in range(10):
            cache.insert(frozenset({i, 1000 + i}), Solution(Result.UNSAT))
        assert len(cache) == 4
        # Evicted entries must leave no index residue behind.
        live = set()
        for bucket in cache._unsat_index.values():
            live.update(bucket)
        assert len(live) == 4


class TestModelReuseFastPath:
    def _executor(self):
        module = compile_source("int main() { return 0; }", "fp")
        return Executor(module)

    def test_fast_path_answers_after_first_solve(self):
        executor = self._executor()
        state = executor.initial_state()
        v = make_var("fp0", 0, 255)
        state.add_constraint(binop(">", v, 10))
        # First query: no model yet -- full solve, records the model.
        assert executor._feasible(state, binop("<", v, 100))
        assert executor.solver.stats.fastpath_hits == 0
        assert state.last_model is not None
        nodes = executor.solver.stats.search_nodes
        # Second query satisfied by the recorded model: no solve at all.
        assert executor._feasible(state, binop("<", v, 200))
        assert executor.solver.stats.fastpath_hits == 1
        assert executor.solver.stats.search_nodes == nodes

    def test_stale_model_misses_and_falls_back(self):
        executor = self._executor()
        state = executor.initial_state()
        v = make_var("fp1", 0, 255)
        state.add_constraint(binop(">", v, 10))
        assert executor._feasible(state, binop("<", v, 100))
        model_value = state.last_model["fp1"]
        # A probe the recorded model contradicts: fast path must miss, the
        # full solver must still answer correctly (feasible: v can be 201+).
        assert executor._feasible(state, binop(">", v, 200))
        assert executor.solver.stats.fastpath_misses >= 1
        # The fallback refreshed the model to a satisfying assignment.
        assert state.last_model["fp1"] > 200 or state.last_model["fp1"] == model_value

    def test_infeasible_probe_stays_infeasible(self):
        executor = self._executor()
        state = executor.initial_state()
        v = make_var("fp2", 0, 255)
        state.add_constraint(binop(">", v, 10))
        assert executor._feasible(state, binop("<", v, 100))
        assert not executor._feasible(state, binop("<", v, 5))

    def test_forked_state_inherits_model_copy(self):
        executor = self._executor()
        state = executor.initial_state()
        v = make_var("fp3", 0, 255)
        state.add_constraint(binop(">", v, 10))
        assert executor._feasible(state, binop("<", v, 100))
        child = state.fork()
        assert child.last_model == state.last_model
        child.last_model["fp3"] = -1
        assert state.last_model["fp3"] != -1


class TestBoundedInterning:
    def test_intern_table_respects_limit(self):
        old_limit = expr_mod._INTERN_LIMIT
        try:
            set_intern_limit(64)
            v = make_var("it0", 0, 255)
            for i in range(500):
                binop("+", v, i + 1)
            assert intern_table_size() <= 64
        finally:
            set_intern_limit(old_limit)

    def test_eviction_is_semantically_invisible(self):
        old_limit = expr_mod._INTERN_LIMIT
        try:
            set_intern_limit(8)
            solver = Solver()
            v = make_var("it1", 0, 255)
            first = solver.check([binop("==", v, 42)])
            for i in range(100):  # flush the interned '== 42' expression
                binop("+", v, i + 1)
            second = solver.check([binop("==", v, 42)])  # rebuilt object
            assert first.model == second.model
            assert solver.stats.cache_hits == 1  # structural key still hits
        finally:
            set_intern_limit(old_limit)

    def test_set_intern_limit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_intern_limit(0)


class TestBoostAfterPrune:
    """A live state whose final-goal distance turns INF after a schedule
    change must be re-parked, not silently dropped (searcher state-loss)."""

    SOURCE = """
    int main() {
        int c = getchar();
        if (c == 'm') {
            assert(0);
        }
        return 0;
    }
    """

    def _searcher_and_states(self, prune=True):
        from repro.analysis import DistanceCalculator
        from repro.search import GoalSpec
        from repro.search.esd import ProximityGuidedSearcher

        from repro.ir import InstrRef

        module = compile_source(self.SOURCE, "boosted")
        executor = Executor(module)
        func = module.functions["main"]
        distances = DistanceCalculator(module)
        final = GoalSpec((InstrRef("main", func.entry, 0),), "final")
        searcher = ProximityGuidedSearcher(
            distances, [], final, prune_unreachable=prune
        )
        return searcher, executor

    def test_boost_keeps_state_live_when_distance_turns_inf(self):
        searcher, executor = self._searcher_and_states()
        state = executor.initial_state()
        searcher.add(state)
        assert len(searcher) == 1
        # Simulate the schedule change that makes the final goal statically
        # unreachable for this state: exit every thread.  state_distance
        # over no live threads is INF, which add() would prune.
        for thread in state.threads.values():
            thread.status = "exited"
        assert searcher.state_distance(state, searcher.final_goal) == float("inf")
        searcher.boost(state)
        # The regression: boost() used to route through add()'s pruning path
        # and drop the live state, leaving _live at 0 with nothing queued.
        assert len(searcher) == 1
        picked = searcher.pick()
        assert picked is state
        assert len(searcher) == 0

    def test_boost_still_reprioritizes_reachable_states(self):
        searcher, executor = self._searcher_and_states()
        state = executor.initial_state()
        searcher.add(state)
        state.schedule_distance = 0.0  # promoted to 'near'
        searcher.boost(state)
        assert len(searcher) == 1
        assert searcher.pick() is state


class TestSessionSolverSharing:
    """One solver + one counterexample cache per ReproSession, shared by
    every synthesis call and surfaced through the session API."""

    def test_batch_reuses_the_solver_across_reports(self):
        from repro.api import ReproSession
        from repro.workloads import get

        workload = get("tac")
        session = ReproSession(workload.compile())
        reports = [workload.make_report() for _ in range(3)]
        batch = session.synthesize_batch(reports)
        assert batch.found_count == 3
        stats = session.solver_stats
        assert stats.queries > 0
        # Reports 2 and 3 re-issue report 1's queries: the shared cache
        # answers them (exact structural hits), and the fast path answers
        # one direction of every branch probe.
        assert stats.cache_hits > 0
        assert session.solver_cache_stats.exact_hits == stats.cache_hits
        assert stats.fastpath_hits > 0

    def test_fresh_sessions_share_nothing(self):
        from repro.api import ReproSession
        from repro.workloads import get

        workload = get("tac")
        first = ReproSession(workload.compile())
        assert first.synthesize(workload.make_report()).found
        second = ReproSession(workload.compile())
        assert second.solver_stats.queries == 0
        assert len(second.solver_cache) == 0
