"""Goal-directed reachability: compositional function summaries, the
backward necessary-precondition inference, the goal-gated distance source,
and the soundness/byte-identity contract the pruning layer must keep."""

import json

import pytest

from repro import ir
from repro.analysis import (
    FALSE,
    DistanceCalculator,
    GoalGatedDistances,
    compute_necessary_conditions,
    compute_reach,
    lint_module,
    summarize_module,
)
from repro.analysis.distance import INF
from repro.core import ESDConfig, build_search_setup, esd_synthesize, extract_goal, search_from_setup
from repro.lang import compile_source
from repro.solver import Solver
from repro.solver.intervals import Interval
from repro.workloads import get

# Single-threaded seeded workloads: the full goal-directed layer (reach
# gating + wp refutation) is active on these.
SINGLE_THREADED = ("tac", "paste", "mkdir", "mkfifo")
# listing1/minidb are multithreaded: the executor-side layer gates off
# (pruning_sound is False), but the artifact must still be identical.
IDENTITY = SINGLE_THREADED + ("listing1", "minidb")


def _goal_refs(workload):
    module = workload.compile()
    goal = extract_goal(module, workload.make_report())
    return module, goal.targets


def _find_store(module, function, constant):
    for ref, instr in module.functions[function].iter_instructions():
        if (isinstance(instr, ir.Store)
                and isinstance(instr.value, ir.Const)
                and instr.value.value == constant):
            return ref
    raise AssertionError(f"no store of {constant} in {function}")


# ---------------------------------------------------------------------------
# Function summaries
# ---------------------------------------------------------------------------


class TestSummaries:
    def test_effects_compose_bottom_up(self):
        module = compile_source(
            """
            int g = 0;
            int h = 0;
            void leaf() { g = 1; }
            void mid() { leaf(); }
            int main() { mid(); return h; }
            """
        )
        summaries = summarize_module(module, cache=False)
        assert "g" in summaries.functions["leaf"].mods
        # Callee effects propagate to every transitive caller.
        assert "g" in summaries.functions["mid"].mods
        assert "g" in summaries.functions["main"].mods
        assert "h" in summaries.functions["main"].refs
        assert "h" not in summaries.functions["leaf"].refs

    def test_may_reach_via_transitive_callees(self):
        module = compile_source(
            """
            void leaf() { return; }
            void mid() { leaf(); }
            int main() { mid(); return 0; }
            """
        )
        summaries = summarize_module(module, cache=False)
        assert summaries.may_reach("main", "leaf")
        assert summaries.may_reach("mid", "leaf")
        assert not summaries.may_reach("leaf", "main")

    def test_mutual_recursion_shares_one_scc(self):
        module = compile_source(
            """
            int g = 0;
            void even(int n) { if (n) { odd(n - 1); } g = 1; }
            void odd(int n) { if (n) { even(n - 1); } }
            int main() { odd(5); return 0; }
            """
        )
        summaries = summarize_module(module, cache=False)
        assert {"even", "odd"} <= set(summaries.recursive)
        # SCC members share the union of their effects.
        assert "g" in summaries.functions["odd"].mods
        assert summaries.may_reach("odd", "even")
        assert summaries.may_reach("even", "odd")

    def test_serializes(self):
        summaries = summarize_module(get("paste").compile())
        data = summaries.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert "main" in data["functions"]


# ---------------------------------------------------------------------------
# Goal-directed reach closure
# ---------------------------------------------------------------------------


class TestGoalReach:
    def test_reach_is_a_strict_subset_on_paste(self):
        module, targets = _goal_refs(get("paste"))
        reach = compute_reach(module, list(targets))
        all_blocks = {
            (func.name, label)
            for func in module.functions.values()
            for label in func.blocks
        }
        assert reach.blocks < all_blocks
        goal = targets[0]
        assert (goal.function, goal.block) in reach.blocks
        assert ("main", module.functions["main"].entry) in reach.blocks

    def test_gated_distances_inf_outside_reach(self):
        module, targets = _goal_refs(get("paste"))
        reach = compute_reach(module, list(targets))
        base = DistanceCalculator(module)
        gated = GoalGatedDistances(base, reach.blocks)
        goal = targets[0]
        outside = sorted(
            label for label in module.functions["main"].blocks
            if ("main", label) not in reach.blocks
        )
        assert outside, "paste should have blocks that cannot reach the goal"
        dead_ref = ir.InstrRef("main", outside[0], 0)
        assert gated.instruction_distance(dead_ref, goal) == INF
        assert base.instruction_distance(goal, goal) == \
            gated.instruction_distance(goal, goal)


# ---------------------------------------------------------------------------
# Necessary preconditions (backward inference)
# ---------------------------------------------------------------------------


class TestNecessaryConditions:
    def test_branch_constant_flows_to_entry(self):
        # Any run reaching the goal must leave 'flag' untouched-by-3 and
        # pass the flag == 2 branch: the necessary condition at entry is
        # exactly flag in [2, 2] (the seeded store of 3 refutes its path).
        module = compile_source(
            """
            int flag = 0;
            int main() {
                int x = getchar();
                if (x) { flag = 3; }
                if (flag == 2) { flag = 9; }
                return 0;
            }
            """
        )
        goal = _find_store(module, "main", 9)
        conditions = compute_necessary_conditions(module, (goal,))
        entry = module.functions["main"].entry
        cond = conditions.condition_at("main", entry)
        assert cond == {("global", "", "flag"): Interval(2, 2)}

    def test_unreachable_function_is_false(self):
        module = compile_source(
            """
            int g = 0;
            void helper() { g = 1; }
            int main() {
                helper();
                if (g == 1) { g = 7; }
                return 0;
            }
            """
        )
        goal = _find_store(module, "main", 7)
        conditions = compute_necessary_conditions(module, (goal,))
        # The goal is in main after helper returns: execution *inside*
        # helper can only reach it by returning first, so the per-frame
        # condition is FALSE (consumers allow the return path separately).
        assert conditions.condition_at("helper", "entry") is FALSE
        assert "helper" not in conditions.may_reach_functions

    def test_workload_conditions_are_nontrivial(self):
        module, targets = _goal_refs(get("paste"))
        conditions = compute_necessary_conditions(module, tuple(targets))
        assert "main" in conditions.analyzed
        assert conditions.dead_blocks, "no refuted block on paste"
        rendered = conditions.to_dict()
        assert json.loads(json.dumps(rendered)) == rendered


# ---------------------------------------------------------------------------
# Executor-level soundness: the audit harness
# ---------------------------------------------------------------------------


class TestPruningSoundness:
    @pytest.mark.parametrize("name", SINGLE_THREADED)
    def test_goal_state_never_wp_dead(self, name):
        """Audit mode: wp-refuted successors keep running but are tagged.
        The tag is inherited by every descendant, so a found goal state
        carrying it would mean the static layer refuted a state the
        dynamic search (with the full solver) drove to the goal."""
        workload = get(name)
        module = workload.compile()
        setup = build_search_setup(
            module, workload.make_report(),
            ESDConfig(use_static_pruning=True),
        )
        setup.executor.wp_audit = True
        result = search_from_setup(module, setup, ESDConfig(use_static_pruning=True))
        assert result.found
        assert setup.executor.wp is not None, f"{name}: wp layer inactive"
        assert setup.executor.prune_stats.checks > 0
        assert not result.goal_state.meta.get("wp_dead"), (
            f"{name}: a statically refuted state reached the goal"
        )

    @pytest.mark.parametrize("name", IDENTITY)
    def test_artifact_byte_identical_pruning_on_vs_off(self, name):
        workload = get(name)
        artifacts = {}
        for pruning in (False, True):
            solver = Solver(structural_keys=False, subset_reasoning=False)
            result = esd_synthesize(
                workload.compile(),
                workload.make_report(),
                ESDConfig(use_static_pruning=pruning),
                solver=solver,
            )
            assert result.found, f"{name}: goal not found (pruning={pruning})"
            artifacts[pruning] = result.execution_file.canonical_bytes()
        assert artifacts[True] == artifacts[False], (
            f"{name}: pruning changed the synthesized execution"
        )

    def test_prune_counters_surface_in_result(self):
        workload = get("mkdir")
        result = esd_synthesize(
            workload.compile(), workload.make_report(),
            ESDConfig(use_static_pruning=True),
        )
        assert result.found
        assert result.static_prune is not None
        assert result.static_prune.checks > 0


# ---------------------------------------------------------------------------
# The summary-layer lint rules
# ---------------------------------------------------------------------------


class TestSummaryLintRules:
    def test_call_to_unreachable_function(self):
        module = compile_source(
            """
            void stranded() { helper(); }
            void helper() { return; }
            int main() { return 0; }
            """
        )
        report = lint_module(module)
        rules = report.by_rule()
        assert rules.get("call-to-unreachable-function", 0) == 1
        finding = next(
            f for f in report.findings
            if f.rule == "call-to-unreachable-function"
        )
        assert finding.function == "stranded"
        assert "'helper'" in finding.message

    def test_dead_parameter_vestigial_constant_feed(self):
        module = compile_source(
            """
            int count = 0;
            void bump(int amount) { count = count + 1; }
            int main() { bump(0); bump(0); return count; }
            """
        )
        report = lint_module(module)
        assert report.by_rule().get("dead-parameter", 0) == 1
        finding = next(f for f in report.findings if f.rule == "dead-parameter")
        assert finding.function == "bump"
        assert "'amount'" in finding.message

    def test_dead_parameter_skips_live_feed_and_conventions(self):
        module = compile_source(
            """
            int count = 0;
            void enter(int tid) { count = count + 1; }
            void leave(int unused) { count = count - 1; }
            int main() {
                int tid = getchar();
                enter(tid);
                leave(0);
                return count;
            }
            """
        )
        rules = lint_module(module).by_rule()
        # 'tid' is fed a computed value (API symmetry), 'unused' is named
        # as intentionally unused: neither is flagged.
        assert "dead-parameter" not in rules

    def test_hawknl_nl_close_flagged(self):
        # A real seeded workload: nl_close(int s) never reads s and every
        # call site passes a constant.
        report = lint_module(get("hawknl").compile())
        dead = [f for f in report.findings if f.rule == "dead-parameter"]
        assert [(f.function, "'s'" in f.message) for f in dead] == [
            ("nl_close", True)
        ]
