"""End-to-end acceptance for the real-Python workloads: each program goes
through the full ESD pipeline -- trigger, coredump, synthesis from the
dump alone, spectrum localization (ground truth in the top 3), and a
validated repair."""

import pytest

from repro.api import ReproSession
from repro.symbex import BugKind
from repro.workloads import PYTHON_WORKLOADS, get
from repro.workloads.pyprograms import FIXED_SOURCES

# Ground truth per workload: the buggy statement(s).  Spectrum formulas
# legitimately rank a failing-only neighbour (the crash site or the
# trigger-enabling line) above an always-covered bound, so ground truth
# is the *set* of lines a fix may touch; the acceptance bar is
# best_rank(set) <= 3.
GROUND_TRUTH = {
    # The off-by-one bound and the unfenced read it enables.
    "pytally": [("total", 10), ("total", 11)],
    # The unguarded premium fee.
    "pyledger": [("main", 19)],
    # Hold-while-blocking: the acquire taken while master is held, and
    # the release that must hoist above it.
    "pyrlock": [("rl_enter", 19), ("rl_enter", 22)],
}


class TestRegistry:
    def test_python_workloads_registered(self):
        for workload in PYTHON_WORKLOADS:
            assert get(workload.name) is workload
            assert workload.lang == "python"

    def test_at_least_one_multithreaded_lock_order_bug(self):
        kinds = {w.name: w.expected_kind for w in PYTHON_WORKLOADS}
        assert BugKind.DEADLOCK in kinds.values()

    def test_fixed_sources_run_clean(self):
        # The corpus bases: every fixed program must terminate without a
        # bug under its own trigger inputs.
        from repro.symbex import ConcreteEnv, ExecConfig, Executor

        from repro.frontend import compile_python_source

        for name, source in FIXED_SOURCES.items():
            workload = get(name)
            module = compile_python_source(source, name)
            policy = None
            if workload.directives is not None:
                from repro.baselines import ForcedSchedulePolicy

                policy = ForcedSchedulePolicy(workload.directives(module))
            executor = Executor(
                module,
                env=ConcreteEnv(workload.trigger_inputs),
                policy=policy,
                config=ExecConfig(),
            )
            state = executor.run_to_completion(executor.initial_state())
            assert state.status == "exited", (name, state.status, state.bug)


@pytest.mark.parametrize("name", ["pytally", "pyledger", "pyrlock"])
class TestFullPipeline:
    def test_synth_localize_repair(self, name):
        workload = get(name)
        report = workload.make_report()
        session = ReproSession(workload.compile())

        # 1. Synthesis from the coredump alone reproduces the bug.
        result = session.synthesize(report)
        assert result.found, result.reason
        assert result.execution_file.bug_kind == workload.expected_kind.value

        # 2. The ground-truth statement localizes in the top 3.
        localization = session.localize(report, failing=result.execution_file)
        rank = localization.best_rank(GROUND_TRUTH[name])
        assert rank is not None and rank <= 3, (
            name, rank, [(s.function, s.line) for s in localization.top(5)])

        # 3. Repair finds and validates a patch.
        repair = session.repair(report, failing=result.execution_file)
        assert repair.found, repair.reason
        assert repair.patch.validation is not None


class TestRepairGroundTruth:
    def test_pyrlock_repair_is_the_lock_order_fix(self):
        # The deadlock repair is exact: hoist the master release above the
        # real acquire (the PYRLOCK_FIXED edit), not a spec weakening.
        workload = get("pyrlock")
        report = workload.make_report()
        session = ReproSession(workload.compile())
        repair = session.repair(report)
        assert repair.found, repair.reason
        assert repair.patch.candidate.kind == "unlock-hoist"
        assert repair.patch.candidate.function == "rl_enter"
