"""Unit tests for the static analyses: CFG, call graph, reaching defs,
critical edges, intermediate goals, and the distance heuristic."""

import pytest

from repro import ir
from repro.analysis import (
    CFG,
    INF,
    DistanceCalculator,
    ReachingDefs,
    build_call_graph,
    collect_global_definitions,
    find_critical_edges,
    find_intermediate_goals,
    reachable_functions,
    reconstruct_condition,
)
from repro.ir import InstrRef
from repro.lang import compile_source


def first_ref(module, func, predicate):
    """InstrRef of the first instruction in ``func`` matching ``predicate``."""
    for ref, instr in module.functions[func].iter_instructions():
        if predicate(instr):
            return ref
    raise AssertionError("no instruction matched")


LISTING1 = """
int idx = 0;
int mode = 0;
mutex M1;
mutex M2;

void critical_section(int unused) {
    lock(M1);
    lock(M2);
    if (mode == 1 && idx == 1) {
        unlock(M1);
        lock(M1);
    }
    unlock(M2);
    unlock(M1);
}

int main() {
    if (getchar() == 'm') {
        idx = idx + 1;
    }
    int *env = getenv("mode");
    if (env[0] == 'Y') {
        mode = 1;
    } else {
        mode = 2;
    }
    int t1 = spawn(critical_section, 0);
    int t2 = spawn(critical_section, 0);
    join(t1);
    join(t2);
    return 0;
}
"""


class TestCFG:
    def test_linear_function_single_block(self):
        module = compile_source("int main() { int x = 1; return x; }")
        cfg = CFG(module.functions["main"])
        assert cfg.succs["entry"] == ()

    def test_if_produces_diamond(self):
        module = compile_source(
            "int main() { int x = 1; if (x) { x = 2; } else { x = 3; } return x; }"
        )
        cfg = CFG(module.functions["main"])
        assert len(cfg.succs["entry"]) == 2

    def test_preds_inverse_of_succs(self):
        module = compile_source(
            "int main() { for (int i = 0; i < 3; i = i + 1) { } return 0; }"
        )
        cfg = CFG(module.functions["main"])
        for label, succs in cfg.succs.items():
            for succ in succs:
                assert label in cfg.preds[succ]

    def test_reachability_from_entry(self):
        module = compile_source("int main() { return 1; return 2; }")
        cfg = CFG(module.functions["main"])
        reachable = cfg.reachable_from_entry()
        assert "entry" in reachable
        # The parked dead block is not reachable.
        assert any(label not in reachable for label in cfg.succs) or len(cfg.succs) == 1

    def test_blocks_reaching(self):
        module = compile_source(
            "int main() { int x = getchar(); if (x) { return 1; } return 0; }"
        )
        func = module.functions["main"]
        cfg = CFG(func)
        then_label = next(l for l in func.blocks if l.startswith("if.then"))
        reaching = cfg.blocks_reaching(then_label)
        assert "entry" in reaching
        end_label = next(l for l in func.blocks if l.startswith("if.end"))
        assert end_label not in reaching


class TestCallGraph:
    def test_direct_calls(self):
        module = compile_source(
            "int f() { return 1; }\nint g() { return f(); }\nint main() { return g(); }"
        )
        graph = build_call_graph(module)
        assert "f" in graph.callees["g"]
        assert "g" in graph.callers["f"]

    def test_thread_create_is_call_edge(self):
        module = compile_source(
            "void w(int x) { return; }\nint main() { join(spawn(w, 1)); return 0; }"
        )
        graph = build_call_graph(module)
        assert "w" in graph.callees["main"]

    def test_indirect_call_targets_address_taken(self):
        module = compile_source(
            "int f(int x) { return x; }\n"
            "int g(int x) { return x + 1; }\n"
            "int main() { int *p = &f; return p(3); }"
        )
        graph = build_call_graph(module)
        # f's address is taken, so it is a target; g's never escapes.
        assert graph.address_taken.get(1) == ("f",)
        assert "f" in graph.callees["main"]
        assert "g" not in graph.callees["main"]

    def test_reachable_functions(self):
        module = compile_source(
            "int used() { return 1; }\n"
            "int unused() { return 2; }\n"
            "int main() { return used(); }"
        )
        graph = build_call_graph(module)
        reachable = reachable_functions(module, graph)
        assert "used" in reachable
        assert "unused" not in reachable


class TestReachingDefs:
    def test_local_defs_tracked(self):
        module = compile_source(
            """
            int main() {
                int x = 1;
                if (getchar()) {
                    x = 2;
                }
                if (x == 2) { return 1; }
                return 0;
            }
            """
        )
        func = module.functions["main"]
        rd = ReachingDefs(module, "main")
        # At the second branch, both x=1 and x=2 reach.
        branch_ref = None
        for ref, instr in func.iter_instructions():
            if isinstance(instr, ir.CondBr) and ref.block.startswith("if.end"):
                branch_ref = ref
        assert branch_ref is not None
        live = rd.reaching_at(branch_ref)
        defs = live[("local", "main", "x")]
        constants = {d.constant for d in defs}
        assert constants == {1, 2}

    def test_kill_within_block(self):
        module = compile_source(
            "int main() { int x = 1; x = 2; if (x) { return 1; } return 0; }"
        )
        rd = ReachingDefs(module, "main")
        func = module.functions["main"]
        branch_ref = next(
            ref for ref, instr in func.iter_instructions() if isinstance(instr, ir.CondBr)
        )
        live = rd.reaching_at(branch_ref)
        defs = live[("local", "main", "x")]
        assert {d.constant for d in defs} == {2}

    def test_global_defs_collected_module_wide(self):
        module = compile_source(
            """
            int g = 0;
            void setter(int v) { g = v; }
            int main() { g = 1; setter(2); return g; }
            """
        )
        defs = collect_global_definitions(module)
        assert len(defs["g"]) == 2
        functions = {d.ref.function for d in defs["g"]}
        assert functions == {"main", "setter"}


class TestReconstruct:
    def test_simple_comparison(self):
        module = compile_source(
            "int flag = 0;\nint main() { if (flag == 3) { return 1; } return 0; }"
        )
        func = module.functions["main"]
        branch = next(
            instr for _, instr in func.iter_instructions() if isinstance(instr, ir.CondBr)
        )
        recon = reconstruct_condition(module, "main", branch.cond.name)
        assert recon is not None
        assert ("global", "flag") in recon.variables

    def test_unreconstructible_call_result(self):
        module = compile_source(
            "int main() { if (getchar() == 3) { return 1; } return 0; }"
        )
        func = module.functions["main"]
        branch = next(
            instr for _, instr in func.iter_instructions() if isinstance(instr, ir.CondBr)
        )
        recon = reconstruct_condition(module, "main", branch.cond.name)
        assert recon is None


class TestCriticalEdges:
    def test_guarded_goal_has_critical_edge(self):
        module = compile_source(
            """
            int flag = 0;
            int main() {
                if (flag == 1) {
                    abort();
                }
                return 0;
            }
            """
        )
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic) and i.name == "abort")
        edges = find_critical_edges(module, goal)
        assert len(edges) == 1
        assert edges[0].condition_value is True

    def test_else_branch_critical_edge(self):
        module = compile_source(
            """
            int flag = 0;
            int main() {
                if (flag == 1) {
                    return 0;
                } else {
                    abort();
                }
                return 0;
            }
            """
        )
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic) and i.name == "abort")
        edges = find_critical_edges(module, goal)
        assert len(edges) == 1
        assert edges[0].condition_value is False

    def test_merge_point_stops_walk(self):
        module = compile_source(
            """
            int main() {
                int x = getchar();
                if (x) { x = 1; }
                abort();
                return 0;
            }
            """
        )
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic) and i.name == "abort")
        edges = find_critical_edges(module, goal)
        assert edges == []  # goal block has 2 predecessors: no chain to walk

    def test_listing1_critical_edges(self):
        module = compile_source(LISTING1, "listing1")
        func = module.functions["critical_section"]
        # Goal: the lock(M1) inside the if (the second lock(M1), line 12).
        locks = [
            ref for ref, instr in func.iter_instructions()
            if isinstance(instr, ir.MutexLock)
        ]
        goal = locks[-1]
        edges = find_critical_edges(module, goal)
        # Both conjuncts (mode == 1, idx == 1) must hold: two critical edges.
        assert len(edges) == 2
        assert all(edge.condition_value for edge in edges)


class TestIntermediateGoals:
    def test_listing1_intermediate_goals(self):
        module = compile_source(LISTING1, "listing1")
        func = module.functions["critical_section"]
        locks = [
            ref for ref, instr in func.iter_instructions()
            if isinstance(instr, ir.MutexLock)
        ]
        goal = locks[-1]
        goals = find_intermediate_goals(module, goal)
        by_var = {g.variable: g for g in goals}
        assert set(by_var) == {"mode", "idx"}
        # mode == 1: only the 'mode = 1' store qualifies (the paper's point:
        # mode = 2 is statically excluded).
        mode_goal = by_var["mode"]
        assert len(mode_goal.alternatives) == 1
        mode_block = mode_goal.alternatives[0]
        stores = [
            instr for ref, instr in module.functions["main"].iter_instructions()
            if isinstance(instr, ir.Store) and ref.block == mode_block.block
        ]
        assert any(
            isinstance(s.value, ir.Const) and s.value.value == 1 for s in stores
        )
        # idx: the idx = idx + 1 store is not statically decidable, so its
        # block is the (only) alternative.
        idx_goal = by_var["idx"]
        assert len(idx_goal.alternatives) == 1

    def test_satisfied_by_initializer_needs_no_goal(self):
        module = compile_source(
            """
            int flag = 1;
            int main() {
                flag = 0;
                if (flag == 1) { abort(); }
                return 0;
            }
            """
        )
        goal = first_ref(
            module, "main",
            lambda i: isinstance(i, ir.Intrinsic) and i.name == "abort",
        )
        goals = find_intermediate_goals(module, goal)
        # The initializer already satisfies flag == 1, so no block *must* run.
        assert goals == []


class TestDistance:
    def test_same_block_distance(self):
        module = compile_source("int main() { int a = 1; int b = 2; abort(); return 0; }")
        calc = DistanceCalculator(module)
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic))
        entry = InstrRef("main", "entry", 0)
        d = calc.instruction_distance(entry, goal)
        assert d == goal.index

    def test_distance_through_branch_takes_shortest(self):
        module = compile_source(
            """
            int main() {
                int x = getchar();
                if (x) {
                    x = x + 1;
                    x = x + 2;
                    x = x + 3;
                }
                abort();
                return 0;
            }
            """
        )
        calc = DistanceCalculator(module)
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic) and i.name == "abort")
        entry = InstrRef("main", "entry", 0)
        d_long = calc.instruction_distance(InstrRef("main", "entry", 0), goal)
        then_label = next(
            l for l in module.functions["main"].blocks if l.startswith("if.then")
        )
        d_then = calc.instruction_distance(InstrRef("main", then_label, 0), goal)
        assert d_long < INF
        assert d_then < INF

    def test_goal_inside_callee_reachable(self):
        module = compile_source(
            """
            void helper(int x) { abort(); }
            int main() { helper(1); return 0; }
            """
        )
        calc = DistanceCalculator(module)
        goal = first_ref(module, "helper", lambda i: isinstance(i, ir.Intrinsic))
        d = calc.instruction_distance(InstrRef("main", "entry", 0), goal)
        assert d < INF

    def test_unreachable_goal_is_infinite(self):
        module = compile_source(
            """
            void never(int x) { abort(); }
            int main() { return 0; }
            """
        )
        calc = DistanceCalculator(module)
        goal = first_ref(module, "never", lambda i: isinstance(i, ir.Intrinsic))
        d = calc.instruction_distance(InstrRef("main", "entry", 0), goal)
        assert d == INF

    def test_dist2ret_simple(self):
        module = compile_source("int main() { int x = 1; return x; }")
        calc = DistanceCalculator(module)
        d = calc.dist2ret(InstrRef("main", "entry", 0))
        assert 1 <= d < INF

    def test_call_cost_includes_callee(self):
        module = compile_source(
            """
            int long_helper(int x) {
                int s = 0;
                s = s + 1; s = s + 2; s = s + 3; s = s + 4;
                return s;
            }
            int short_path(int x) { return x; }
            int main() { return long_helper(1) + short_path(2); }
            """
        )
        calc = DistanceCalculator(module)
        assert calc.call_cost("long_helper") > calc.call_cost("short_path")

    def test_recursion_costs_fixed_weight(self):
        module = compile_source(
            """
            int rec(int n) {
                if (n == 0) { return 0; }
                return rec(n - 1);
            }
            int main() { return rec(5); }
            """
        )
        calc = DistanceCalculator(module)
        cost = calc.call_cost("rec")
        assert cost < INF

    def test_state_distance_through_return(self):
        # Goal is in main *after* a call to helper; a state inside helper
        # reaches it by returning (Algorithm 1 lines 3-6).
        module = compile_source(
            """
            int helper(int x) { return x + 1; }
            int main() {
                int y = helper(1);
                abort();
                return y;
            }
            """
        )
        calc = DistanceCalculator(module)
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic))
        # Simulate a state inside helper whose caller resumes before abort.
        callsite = first_ref(module, "main", lambda i: isinstance(i, ir.Call))
        resume = InstrRef("main", callsite.block, callsite.index + 1)
        frames = [InstrRef("helper", "entry", 0), resume]
        d = calc.state_distance(frames, goal)
        assert d < INF
        # From inside helper without the stack, the goal is unreachable.
        assert calc.instruction_distance(frames[0], goal) == INF

    def test_state_distance_cached(self):
        module = compile_source(
            "int main() { abort(); return 0; }"
        )
        calc = DistanceCalculator(module)
        goal = first_ref(module, "main", lambda i: isinstance(i, ir.Intrinsic))
        frames = [InstrRef("main", "entry", 0)]
        first = calc.state_distance(frames, goal)
        second = calc.state_distance(frames, goal)
        assert first == second

    def test_listing1_distance_decreases_along_path(self):
        module = compile_source(LISTING1, "listing1")
        calc = DistanceCalculator(module)
        func = module.functions["critical_section"]
        locks = [
            ref for ref, instr in func.iter_instructions()
            if isinstance(instr, ir.MutexLock)
        ]
        goal = locks[-1]
        d_main = calc.state_distance([InstrRef("main", "entry", 0)], goal)
        d_cs = calc.state_distance([InstrRef("critical_section", "entry", 0)], goal)
        assert d_cs < d_main < INF
