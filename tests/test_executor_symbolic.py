"""Symbolic-execution tests: forking, path constraints, input inference."""

import pytest

from repro.lang import compile_source
from repro.solver import evaluate
from repro.symbex import BugKind, Executor
from repro.search import DFSSearcher, SearchBudget, explore


def find_bug(source, kind=None, budget=None):
    """Explore with DFS until any bug (optionally of ``kind``) is found."""
    module = compile_source(source)
    executor = Executor(module)

    def is_goal(state):
        if state.status != "bug":
            return False
        return kind is None or state.bug.kind is kind

    outcome = explore(
        executor, DFSSearcher(), executor.initial_state(), is_goal,
        budget or SearchBudget(max_seconds=30),
    )
    return outcome, executor


def solved_inputs(outcome, executor):
    model = executor.solver.model(outcome.goal_state.constraints)
    assert model is not None
    return model


class TestForking:
    def test_symbolic_branch_explores_both_sides(self):
        source = """
        int main() {
            int c = getchar();
            if (c == 'm') {
                assert(0);
            }
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ASSERT_FAIL)
        assert outcome.found
        model = solved_inputs(outcome, executor)
        assert model["stdin0"] == ord("m")

    def test_nested_conditions_constrain_inputs(self):
        source = """
        int main() {
            int a = getchar();
            int b = getchar();
            if (a > 'f') {
                if (b == a + 1) {
                    abort();
                }
            }
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ABORT)
        assert outcome.found
        model = solved_inputs(outcome, executor)
        assert model["stdin0"] > ord("f")
        assert model["stdin1"] == model["stdin0"] + 1

    def test_infeasible_path_not_explored(self):
        source = """
        int main() {
            int c = getchar();
            if (c > 10) {
                if (c < 5) {
                    abort();
                }
            }
            return 0;
        }
        """
        outcome, _ = find_bug(source, BugKind.ABORT, SearchBudget(max_seconds=10))
        assert not outcome.found
        assert outcome.reason == "exhausted"

    def test_arithmetic_on_inputs(self):
        source = """
        int main() {
            int x = getchar();
            if (x * 3 + 1 == 91) {
                abort();
            }
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ABORT)
        assert outcome.found
        assert solved_inputs(outcome, executor)["stdin0"] == 30

    def test_env_var_constrained(self):
        source = """
        int main() {
            int *mode = getenv("mode");
            if (mode[0] == 'Y') {
                abort();
            }
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ABORT)
        assert outcome.found
        model = solved_inputs(outcome, executor)
        assert model["env.mode.0"] == ord("Y")

    def test_path_constraints_consistent(self):
        source = """
        int main() {
            int a = getchar();
            int b = getchar();
            if (a < b) {
                if (b < 10) {
                    abort();
                }
            }
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ABORT)
        model = solved_inputs(outcome, executor)
        for constraint in outcome.goal_state.constraints:
            full = dict(model)
            for var in constraint.variables():
                full.setdefault(var.name, var.lo)
            assert evaluate(constraint, full) != 0


class TestSymbolicMemory:
    def test_symbolic_index_oob_found(self):
        source = """
        int main() {
            int a[4];
            int i = getchar();
            a[i] = 1;
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.OUT_OF_BOUNDS)
        assert outcome.found
        model = executor.solver.model(outcome.goal_state.constraints)
        index = model.get("stdin0", 0)
        assert index < 0 or index >= 4

    def test_symbolic_index_in_bounds_continues(self):
        source = """
        int main() {
            int a[4] = {0, 0, 0, 0};
            int i = getchar();
            if (i >= 0 && i < 4) {
                a[i] = 1;
            }
            return 0;
        }
        """
        outcome, _ = find_bug(source, BugKind.OUT_OF_BOUNDS, SearchBudget(max_seconds=10))
        assert not outcome.found

    def test_strlen_of_symbolic_env_forks(self):
        source = """
        int main() {
            int *s = getenv("v");
            if (strlen(s) == 3) {
                abort();
            }
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ABORT)
        assert outcome.found
        model = solved_inputs(outcome, executor)
        full = {f"env.v.{i}": model.get(f"env.v.{i}", 0) for i in range(7)}
        length = 0
        while length < 7 and full[f"env.v.{length}"] != 0:
            length += 1
        assert length == 3

    def test_symbolic_division_by_zero(self):
        source = """
        int main() {
            int d = getchar();
            return 100 / (d - 'x');
        }
        """
        outcome, executor = find_bug(source, BugKind.DIV_BY_ZERO)
        assert outcome.found
        assert solved_inputs(outcome, executor)["stdin0"] == ord("x")

    def test_assert_forks_failing_state(self):
        source = """
        int main() {
            int v = getchar();
            assert(v != 'Q');
            return 0;
        }
        """
        outcome, executor = find_bug(source, BugKind.ASSERT_FAIL)
        assert outcome.found
        assert solved_inputs(outcome, executor)["stdin0"] == ord("Q")


class TestSearchAccounting:
    def test_paths_completed_counted(self):
        source = """
        int main() {
            int a = getchar();
            if (a == 1) { return 1; }
            if (a == 2) { return 2; }
            return 0;
        }
        """
        module = compile_source(source)
        executor = Executor(module)
        outcome = explore(
            executor, DFSSearcher(), executor.initial_state(),
            lambda s: False, SearchBudget(max_seconds=10),
        )
        assert outcome.reason == "exhausted"
        assert outcome.stats.paths_completed == 3

    def test_other_bugs_collected(self):
        source = """
        int main() {
            int a = getchar();
            if (a == 7) { abort(); }
            assert(a != 9);
            return 0;
        }
        """
        module = compile_source(source)
        executor = Executor(module)
        outcome = explore(
            executor, DFSSearcher(), executor.initial_state(),
            lambda s: False, SearchBudget(max_seconds=10),
        )
        kinds = {b.bug.kind for b in outcome.other_bugs}
        assert BugKind.ABORT in kinds
        assert BugKind.ASSERT_FAIL in kinds

    def test_budget_respected(self):
        source = """
        int main() {
            while (1) {
                int c = getchar();
                if (c == 0) { return 0; }
            }
            return 0;
        }
        """
        module = compile_source(source)
        executor = Executor(module)
        outcome = explore(
            executor, DFSSearcher(), executor.initial_state(),
            lambda s: False, SearchBudget(max_instructions=5000, max_seconds=10),
        )
        assert outcome.reason == "budget"
