"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_integer_literal_value(self):
        tok = tokenize("42")[0]
        assert tok.kind == "int"
        assert tok.value == 42

    def test_identifier(self):
        tok = tokenize("foo_bar1")[0]
        assert tok.kind == "ident"
        assert tok.text == "foo_bar1"

    def test_keyword_recognized(self):
        tok = tokenize("while")[0]
        assert tok.kind == "kw"

    def test_identifier_with_keyword_prefix(self):
        tok = tokenize("whiles")[0]
        assert tok.kind == "ident"

    def test_operators_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<", "=", "b"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a&&b") == ["a", "&&", "b"]
        assert texts("a&b") == ["a", "&", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]


class TestLiterals:
    def test_char_literal(self):
        tok = tokenize("'m'")[0]
        assert tok.kind == "char"
        assert tok.value == ord("m")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")
        assert tokenize(r"'\0'")[0].value == 0

    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind == "string"
        assert tok.text == "hello world"

    def test_string_with_escapes(self):
        assert tokenize(r'"a\tb"')[0].text == "a\tb"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_bad_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == ["ident", "ident", "eof"]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == ["ident", "ident", "eof"]

    def test_block_comment_tracks_lines(self):
        toks = tokenize("/* a\nb\n*/ c")
        assert toks[0].line == 3

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a $ b")
        assert err.value.line == 1

    def test_error_line_number(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\nok\n@")
        assert err.value.line == 3


class TestColumns:
    def test_tokens_carry_columns(self):
        from repro.lang.lexer import tokenize

        toks = tokenize("int main() { return 42; }")
        assert [(t.text, t.line, t.col) for t in toks[:3]] == [
            ("int", 1, 1), ("main", 1, 5), ("(", 1, 9)]

    def test_lex_error_carries_column(self):
        import pytest

        from repro.lang.lexer import LexError, tokenize

        with pytest.raises(LexError) as info:
            tokenize("int x @ 1;")
        assert info.value.line == 1
        assert info.value.col == 7
        assert "line 1:7" in str(info.value)
