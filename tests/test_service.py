"""ReproService: job lifecycle, dedup, cancellation, shared statics,
graceful shutdown with resumable checkpoints, and the acceptance
invariants (artifact byte-identity with the inline session; one static
pass for N concurrent jobs on one module)."""

import threading
import time

import pytest

from repro.api import ReproSession
from repro.api.jobs import (
    CANCELLED,
    FAILED,
    FOUND,
    QUEUED,
    SEARCHING,
    JobSpec,
    ResultNotReadyError,
    UnknownJobError,
)
from repro.core import ESDConfig
from repro.service import ReproService
from repro.store import ArtifactStore
from repro.workloads import TABLE1, get
from repro.workloads.ghttpd import hard_workload


def wide_config(max_seconds=300.0):
    """A budget that will not expire under a slow CI box."""
    config = ESDConfig()
    config.budget.max_seconds = max_seconds
    config.budget.max_instructions = 100_000_000
    return config


@pytest.fixture()
def service():
    svc = ReproService(max_workers=2)
    yield svc
    svc.shutdown(graceful=False, timeout=10.0)


@pytest.fixture(scope="module")
def hard():
    workload = hard_workload(4)
    return workload


def submit_hard(service, workload, description="hard"):
    report = workload.make_report()
    report.description = description
    return service.submit(JobSpec(
        report=report, source=workload.source, program_name=workload.name,
        config=wide_config(),
    ))


def wait_for_state(service, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.job(job_id).state == state:
            return True
        time.sleep(0.02)
    return False


class TestJobLifecycle:
    def test_workload_job_runs_to_found(self, service):
        record = service.submit(JobSpec(workload="tac"))
        final = service.wait(record.job_id, timeout=120)
        assert final.state == FOUND
        assert final.result["found"] is True
        assert "execution" in final.artifacts
        assert "spec" in final.artifacts
        kinds = [e.kind for e in final.events]
        states = [e.state for e in final.events if e.kind == "state"]
        assert states == [QUEUED, "STATIC", "SEARCHING", FOUND]
        assert kinds[0] == "state"

    def test_unknown_job_raises(self, service):
        with pytest.raises(UnknownJobError):
            service.job("j99999-deadbeef")

    def test_duplicate_spec_dedupes_to_one_job(self, service):
        spec = JobSpec(workload="tac")
        first = service.submit(spec)
        second = service.submit(JobSpec(workload="tac"))
        assert second.job_id == first.job_id
        assert second.deduped
        assert service.stats.deduped == 1
        # The dedup key is the spec's store digest.
        assert first.spec_digest == spec.digest()
        assert first.artifacts["spec"] == spec.digest()

    def test_distinct_specs_get_distinct_jobs(self, service):
        a = service.submit(JobSpec(workload="tac", priority=1))
        b = service.submit(JobSpec(workload="tac"))  # different priority
        assert a.job_id != b.job_id

    def test_cancel_while_queued(self, hard):
        service = ReproService(max_workers=1)
        try:
            blocker = submit_hard(service, hard, "blocker")
            assert wait_for_state(service, blocker.job_id, SEARCHING)
            queued = service.submit(JobSpec(workload="tac"))
            assert service.job(queued.job_id).state == QUEUED
            cancelled = service.cancel(queued.job_id)
            assert cancelled.state == CANCELLED
            # It never ran: no STATIC/SEARCHING transitions.
            states = [e.state for e in cancelled.events if e.kind == "state"]
            assert states == [QUEUED, CANCELLED]
            service.cancel(blocker.job_id)
            assert service.wait(blocker.job_id, timeout=30).state == CANCELLED
        finally:
            service.shutdown(graceful=False, timeout=10.0)

    def test_cancel_mid_search(self, service, hard):
        record = submit_hard(service, hard, "cancel-me")
        assert wait_for_state(service, record.job_id, SEARCHING)
        service.cancel(record.job_id)
        final = service.wait(record.job_id, timeout=30)
        assert final.state == CANCELLED
        assert final.reason == "cancelled"
        assert final.result["reason"] == "cancelled"

    def test_artifact_fetch_before_completion(self, service, hard):
        record = submit_hard(service, hard, "fetch-early")
        assert wait_for_state(service, record.job_id, SEARCHING)
        with pytest.raises(ResultNotReadyError, match="no 'execution'"):
            service.fetch_artifact(record.job_id)
        with pytest.raises(ResultNotReadyError, match="not finished"):
            service.result(record.job_id)
        service.cancel(record.job_id)
        service.wait(record.job_id, timeout=30)

    def test_priority_orders_the_queue(self, hard):
        service = ReproService(max_workers=1)
        try:
            blocker = submit_hard(service, hard, "blocker")
            assert wait_for_state(service, blocker.job_id, SEARCHING)
            low = service.submit(JobSpec(workload="tac", priority=0))
            high = service.submit(JobSpec(workload="mkdir", priority=5))
            service.cancel(blocker.job_id)
            low_final = service.wait(low.job_id, timeout=120)
            high_final = service.wait(high.job_id, timeout=120)
            assert low_final.state == FOUND and high_final.state == FOUND
            assert high_final.started_at <= low_final.started_at
        finally:
            service.shutdown(graceful=False, timeout=10.0)

    def test_wait_timeout_returns_live_record(self, service, hard):
        record = submit_hard(service, hard, "slow")
        live = service.wait(record.job_id, timeout=0.2)
        assert not live.terminal
        service.cancel(record.job_id)
        service.wait(record.job_id, timeout=30)

    def test_bad_program_fails_the_job(self, service):
        report = get("tac").make_report()
        record = service.submit(JobSpec(
            report=report, source="int main( { syntax error",
            program_name="broken",
        ))
        final = service.wait(record.job_id, timeout=30)
        assert final.state == FAILED
        assert final.error

    def test_session_submit_is_an_async_job(self):
        workload = get("tac")
        session = ReproSession.from_source(workload.source, workload.name)
        record = session.submit(workload.make_report())
        final = session.wait(record.job_id, timeout=120)
        assert final.state == FOUND
        assert not final.ephemeral  # source known: recoverable spec

    def test_session_submit_without_source_is_ephemeral(self):
        workload = get("tac")
        session = ReproSession(workload.compile())
        record = session.submit(workload.make_report())
        final = session.wait(record.job_id, timeout=120)
        assert final.state == FOUND
        assert final.ephemeral


class TestAcceptance:
    @pytest.mark.parametrize("name", [w.name for w in TABLE1])
    def test_job_artifact_byte_identical_to_inline_session(self, name):
        """Acceptance: for every e2e workload, the artifact a submitted job
        stores is byte-identical to a direct ReproSession.synthesize()."""
        workload = get(name)
        report = workload.make_report()
        direct = ReproSession(workload.compile(), workers=1).synthesize(report)
        assert direct.found

        service = ReproService(max_workers=1)
        try:
            record = service.submit(JobSpec(workload=name, report=report))
            final = service.wait(record.job_id, timeout=240)
            assert final.state == FOUND
            fetched = service.fetch_artifact(record.job_id)
        finally:
            service.shutdown(graceful=False, timeout=10.0)
        assert fetched == direct.execution_file.canonical_bytes()

    def test_concurrent_jobs_share_one_static_pass(self):
        """Acceptance: N>=4 concurrent jobs on one module, exactly one
        static-analysis pass (distance build) across the service."""
        service = ReproService(max_workers=4)
        try:
            records = []
            for i in range(4):
                report = get("tac").make_report()
                report.description = f"concurrent {i}"
                records.append(service.submit(JobSpec(
                    workload="tac", report=report,
                )))
            assert len({r.job_id for r in records}) == 4
            for record in records:
                assert service.wait(record.job_id, timeout=240).state == FOUND
            program = service.programs()["workload:tac"]
            assert program.static_stats.distance_builds == 1
            assert service.stats.completed == 4
        finally:
            service.shutdown(graceful=False, timeout=10.0)


class TestGracefulShutdownAndRecovery:
    def test_interrupted_job_is_resumable_not_failed(self, tmp_path, hard):
        root = tmp_path / "store"
        service = ReproService(store=ArtifactStore(root), max_workers=1)
        record = submit_hard(service, hard, "interrupt-me")
        assert wait_for_state(service, record.job_id, SEARCHING)
        time.sleep(0.3)  # let the frontier grow past the trivial stage
        service.shutdown(graceful=True, timeout=30.0)
        stopped = service.job(record.job_id)
        assert stopped.state == QUEUED  # resumable, NOT failed
        assert stopped.interruptions == 1
        assert "checkpoint" in stopped.artifacts

        # A fresh service over the same store recovers the queue and
        # resumes from the checkpoint to completion.
        revived = ReproService(store=ArtifactStore(root), max_workers=1)
        try:
            assert revived.stats.recovered == 1
            final = revived.wait(record.job_id, timeout=240)
            assert final.state == FOUND
            # The resumed totals include the interrupted leg's work.
            assert final.result["instructions"] > 0
            fetched = revived.fetch_artifact(record.job_id)
            assert b"esd-execution-file-v1" in fetched
        finally:
            revived.shutdown(graceful=False, timeout=10.0)

    def test_submit_after_shutdown_rejected(self):
        service = ReproService(max_workers=1)
        service.shutdown()
        from repro.api.jobs import JobError

        with pytest.raises(JobError, match="shut down"):
            service.submit(JobSpec(workload="tac"))

    def test_gc_keeps_referenced_artifacts(self, tmp_path):
        service = ReproService(store=ArtifactStore(tmp_path / "s"),
                               max_workers=1)
        try:
            record = service.submit(JobSpec(workload="tac"))
            final = service.wait(record.job_id, timeout=120)
            assert final.state == FOUND
            stray = service.store.put_bytes(b"stray-bytes")
            removed = service.gc()
            assert removed == [stray]
            assert service.fetch_artifact(record.job_id)  # still there
        finally:
            service.shutdown(graceful=False, timeout=10.0)


class TestProgramSharing:
    def test_same_source_shares_a_program_context(self, service):
        workload = get("tac")
        a = service.program_for_source(workload.source, workload.name)
        b = service.program_for_source(workload.source, workload.name)
        assert a is b

    def test_session_from_source_shares_with_wire_jobs(self):
        workload = get("tac")
        service = ReproService(max_workers=1)
        try:
            session = ReproSession.from_source(
                workload.source, workload.name, service=service
            )
            program = service.program_for_source(workload.source,
                                                 workload.name)
            assert session.program is program
        finally:
            service.shutdown(graceful=False, timeout=10.0)


class TestReviewRegressions:
    def test_resubmit_after_recovery_dedupes_without_crash(self, tmp_path):
        """A submission that dedupes onto a record recovered from the store
        (which has no live work entry) must return it, not crash."""
        workload = get("tac")
        report = workload.make_report()
        root = tmp_path / "store"
        first = ReproService(store=ArtifactStore(root), max_workers=1)
        session = ReproSession.from_source(workload.source, workload.name,
                                           service=first)
        record = session.submit(report)
        assert first.wait(record.job_id, timeout=120).state == FOUND
        first.shutdown(graceful=False, timeout=10.0)

        revived = ReproService(store=ArtifactStore(root), max_workers=1)
        try:
            session2 = ReproSession.from_source(workload.source,
                                                workload.name,
                                                service=revived)
            again = session2.submit(report)
            assert again.job_id == record.job_id
            assert again.state == FOUND
            assert revived.fetch_artifact(again.job_id)
        finally:
            revived.shutdown(graceful=False, timeout=10.0)

    def test_session_close_stops_owned_service_threads(self):
        workload = get("tac")
        with ReproSession.from_source(workload.source,
                                      workload.name) as session:
            record = session.submit(workload.make_report())
            assert session.wait(record.job_id, timeout=120).state == FOUND
        # close() ran on exit: the owned service rejects new submissions.
        from repro.api.jobs import JobError

        with pytest.raises(JobError, match="shut down"):
            session.service.submit(JobSpec(workload="tac"))

    def test_terminal_jobs_release_runtime_payloads(self, service):
        record = service.submit(JobSpec(workload="tac"))
        assert service.wait(record.job_id, timeout=120).state == FOUND
        # The record stays for status queries; the heavy runtime payload
        # (spec with source/report) and the cancel event do not.
        assert record.job_id not in service._work
        assert record.job_id not in service._cancels
        assert service.job(record.job_id).state == FOUND

    def test_progress_event_folding_keeps_seq_moving(self):
        from repro.api.jobs import MAX_PROGRESS_EVENTS, JobRecord

        record = JobRecord("j00001-ab", "f" * 64)
        for i in range(MAX_PROGRESS_EVENTS + 50):
            record.add_event("progress", instructions=i)
        assert len(record.events) <= MAX_PROGRESS_EVENTS
        # A `since=<last seen>` poller must keep seeing folded updates.
        seen = record.events[-1].seq
        record.add_event("progress", instructions=10_000)
        assert record.events[-1].seq > seen
        assert record.events[-1].instructions == 10_000


class TestPythonLangJobs:
    """Source jobs carry a `lang` field: the service compiles `.py` text
    through repro.frontend, and Python workloads resolve by name."""

    def test_python_source_job_runs_to_found(self, service):
        workload = get("pyledger")
        record = service.submit(JobSpec(
            report=workload.make_report(),
            source=workload.source,
            program_name="pyledger",
            lang="python",
            config=wide_config(),
        ))
        final = service.wait(record.job_id, timeout=120)
        assert final.state == FOUND
        assert final.result["found"] is True

    def test_python_workload_job_by_name(self, service):
        record = service.submit(JobSpec(workload="pytally",
                                        config=wide_config()))
        final = service.wait(record.job_id, timeout=120)
        assert final.state == FOUND

    def test_lang_round_trips_through_wire_form(self):
        workload = get("pytally")
        spec = JobSpec(report=workload.make_report(),
                       source=workload.source,
                       program_name="pytally", lang="python")
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored.lang == "python"
        assert restored.digest() == spec.digest()

    def test_lang_changes_the_dedup_digest(self):
        workload = get("pytally")
        report = workload.make_report()
        python_spec = JobSpec(report=report, source=workload.source,
                              program_name="pytally", lang="python")
        esd_spec = JobSpec(report=report, source=workload.source,
                           program_name="pytally", lang="esd")
        assert python_spec.digest() != esd_spec.digest()

    def test_unknown_lang_rejected(self):
        from repro.api.jobs import SpecError

        workload = get("pytally")
        spec = JobSpec(report=workload.make_report(),
                       source=workload.source, lang="fortran")
        with pytest.raises(SpecError, match="fortran"):
            spec.validate()
