"""The automated repair subsystem: coverage spectra, fault localization,
constraint-based patch synthesis, and the paper-section-8 validation
criterion (promoted from examples/triage_and_patch.py into CI assertions)."""

import json

import pytest

from repro import ReproSession, compile_source
from repro.core import ESDConfig, esd_synthesize
from repro.ir import Hole, InstrRef
from repro.playback import collect_coverage, play_back
from repro.repair import (
    LocalizationError,
    Patch,
    PatchCandidate,
    RepairConfig,
    candidates_for,
    clone_module,
    concrete_behavior,
    explore_with_holes,
    localize,
    module_holes,
    repair,
    substitute_holes,
    synthesize_passing_executions,
    validate_patch,
)
from repro.search import SearchBudget
from repro.solver import Solver
from repro.symbex.executor import hole_var
from repro.workloads import TAC, get


def fast_config() -> ESDConfig:
    return ESDConfig(budget=SearchBudget(
        max_instructions=5_000_000, max_states=200_000, max_seconds=60.0,
    ))


@pytest.fixture(scope="module")
def tac_module():
    return get("tac").compile()


@pytest.fixture(scope="module")
def tac_report():
    return get("tac").make_report()


@pytest.fixture(scope="module")
def tac_failing(tac_module, tac_report):
    result = esd_synthesize(tac_module, tac_report, fast_config())
    assert result.found
    return result.execution_file


@pytest.fixture(scope="module")
def tac_passing(tac_module):
    return synthesize_passing_executions(tac_module, count=4)


@pytest.fixture(scope="module")
def tac_repair_result(tac_module):
    return repair(tac_module, get("tac").make_report(),
                  config=RepairConfig(esd=fast_config()))


# ---------------------------------------------------------------------------
# Coverage spectra (repro play --coverage's engine)
# ---------------------------------------------------------------------------


class TestCoverage:
    def test_failing_execution_ends_at_the_crash_site(
        self, tac_module, tac_failing
    ):
        coverage = collect_coverage(tac_module, tac_failing)
        assert coverage.status == "bug"
        assert coverage.bug_kind == "buffer-overflow"
        # The backward-scan loop (line 29 of the tac source) is both covered
        # and the end site.
        assert ("main", 29) in coverage.lines
        assert ("main", 29) in coverage.end_sites
        # The scan re-executes the loop condition: more than one hit.
        assert coverage.lines[("main", 29)] > 1

    def test_passing_execution_has_no_end_sites(self, tac_module, tac_passing):
        coverage = collect_coverage(tac_module, tac_passing[0])
        assert coverage.status == "exited"
        assert coverage.end_sites == ()

    def test_json_shape(self, tac_module, tac_failing):
        data = collect_coverage(tac_module, tac_failing).to_dict()
        assert data["format"] == "esd-coverage-v1"
        assert data["schema_version"] == 1
        assert "main" in data["functions"]
        hits = data["functions"]["main"]
        assert all(isinstance(v, int) for v in hits.values())
        assert data["end_sites"] == [{"function": "main", "line": 29}]


class TestPassingSynthesis:
    def test_distinct_clean_terminations(self, tac_module, tac_passing):
        assert len(tac_passing) >= 2
        fingerprints = {p.fingerprint() for p in tac_passing}
        assert len(fingerprints) == len(tac_passing)
        for execution in tac_passing:
            replay = play_back(tac_module, execution)
            assert replay.state.status == "exited"


# ---------------------------------------------------------------------------
# Localization: the ground-truth faulty statement ranks in the top 3
# ---------------------------------------------------------------------------


def _localization_for(name: str, passing_count: int = 4):
    workload = get(name)
    module = workload.compile()
    result = esd_synthesize(module, workload.make_report(), fast_config())
    assert result.found
    passing = synthesize_passing_executions(module, count=passing_count)
    assert passing, f"no passing executions synthesized for {name}"
    return module, localize(module, [result.execution_file], passing)


class TestLocalization:
    def test_tac_ground_truth_in_top3(self):
        # Ground truth: the unbounded backward scan `while (buf[i] != 10)`.
        _, ranking = _localization_for("tac")
        assert ranking.best_rank([("main", 29)]) <= 3

    def test_listing1_ground_truth_in_top3(self):
        # Ground truth: the unlock/relock window inside the if (paper
        # Listing 1 lines 11-12; our source lines 11 and 12).
        _, ranking = _localization_for("listing1")
        assert ranking.best_rank(
            [("critical_section", 11), ("critical_section", 12)]
        ) <= 3

    def test_mkdir_ground_truth_in_top3(self):
        # Ground truth: the error path dereferencing the NULL parse_mode
        # result (`print_int(mode_bits[3])`).
        _, ranking = _localization_for("mkdir")
        assert ranking.best_rank([("main", 67)]) <= 3

    def test_paste_ground_truth_in_top3(self):
        # Ground truth: the invalid `free(delims)` of the static fallback.
        _, ranking = _localization_for("paste")
        assert ranking.best_rank([("main", 72)]) <= 3

    def test_tarantula_formula(self, tac_module, tac_failing, tac_passing):
        ranking = localize(tac_module, [tac_failing], tac_passing,
                           formula="tarantula")
        assert ranking.formula == "tarantula"
        assert ranking.best_rank([("main", 29)]) <= 3

    def test_needs_a_failing_spectrum(self, tac_module, tac_passing):
        with pytest.raises(LocalizationError):
            localize(tac_module, [], tac_passing)

    def test_unknown_formula_rejected(self, tac_module, tac_failing):
        with pytest.raises(LocalizationError):
            localize(tac_module, [tac_failing], [], formula="dstar")


# ---------------------------------------------------------------------------
# Symbolic holes
# ---------------------------------------------------------------------------


class TestHoles:
    def test_one_hole_is_one_solver_variable(self):
        hole = Hole("t-shared", 0, 9)
        assert hole_var(hole) is hole_var(Hole("t-shared", 0, 9))
        assert hole_var(hole) is not hole_var(Hole("t-other", 0, 9))

    def test_substitute_holes_concretizes(self):
        from repro import ir as _ir
        from repro.symbex import RecordedInputs

        module = compile_source(
            "int main() { int x = getchar(); return x + 3; }", "m"
        )
        # Plant a hole by hand in place of the constant operand.
        planted = False
        for block in module.functions["main"].blocks.values():
            for instr in block.instrs:
                if isinstance(instr, _ir.BinOp) and instr.rhs == _ir.Const(3):
                    instr.rhs = Hole("t-sub", -10, 10)
                    planted = True
        assert planted
        assert [h.name for h in module_holes(module)] == ["t-sub"]
        substitute_holes(module, {"t-sub": 7})
        assert module_holes(module) == []
        behavior = concrete_behavior(module, RecordedInputs(stdin=[2]))
        assert behavior.exit_code == 9  # 2 + 7

    def test_explore_with_holes_partitions_on_the_hole(self):
        source = """
        int main() {
            int x = getchar();
            if (x < 5) { return 1; }
            return 0;
        }
        """
        module = compile_source(source, "m")
        from repro import ir as _ir

        # Replace the comparison constant with a hole; stdin is concrete.
        for block in module.functions["main"].blocks.values():
            for instr in block.instrs:
                if isinstance(instr, _ir.BinOp) and instr.op == "<":
                    instr.rhs = Hole("t-fence", 0, 20)
        from repro.symbex import RecordedInputs

        paths = explore_with_holes(
            module, RecordedInputs(stdin=[7]), Solver()
        )
        exits = sorted(p.behavior.exit_code for p in paths)
        assert exits == [0, 1]  # 7 < fence both ways


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


class TestTemplates:
    def test_bounds_guard_leads_for_tac_crash(self, tac_module, tac_failing,
                                              tac_passing):
        ranking = localize(tac_module, [tac_failing], tac_passing)
        suspect = ranking.top(1)[0]
        candidates = candidates_for(tac_module, suspect, "crash")
        assert candidates
        assert candidates[0].kind == "bounds-guard"
        assert candidates[0].holes

    def test_unlock_hoist_generated_for_minidb(self):
        module = get("minidb").compile()
        ranking_suspect = type("S", (), {})()
        ranking_suspect.function = "rl_enter"
        ranking_suspect.line = 34
        candidates = candidates_for(module, ranking_suspect, "deadlock")
        hoists = [c for c in candidates if c.kind == "unlock-hoist"]
        assert hoists
        patched = clone_module(module)
        hoists[0].apply(patched)
        # The release-path block now unlocks rl_master before lock(rl_real).
        from repro import ir as _ir

        ref = InstrRef.parse(hoists[0].params["ref"])
        block = patched.functions["rl_enter"].blocks[ref.block]
        kinds = [type(i).__name__ for i in block.instrs]
        assert kinds.index("MutexUnlock") < kinds.index("MutexLock")
        assert isinstance(block.instrs[0], _ir.MutexUnlock)

    def test_line_drop_keeps_instruction_refs_stable(self):
        module = get("mkdir").compile()
        sizes = {
            name: func.size for name, func in module.functions.items()
        }
        suspect = type("S", (), {})()
        suspect.function = "main"
        suspect.line = 67
        candidates = [c for c in candidates_for(module, suspect, "crash")
                      if c.kind == "line-drop"]
        assert candidates
        patched = clone_module(module)
        candidates[0].apply(patched)
        assert {n: f.size for n, f in patched.functions.items()} == sizes

    def test_candidate_round_trip(self, tac_module, tac_failing, tac_passing):
        ranking = localize(tac_module, [tac_failing], tac_passing)
        candidate = candidates_for(tac_module, ranking.top(1)[0], "crash")[0]
        again = PatchCandidate.from_dict(
            json.loads(json.dumps(candidate.to_dict()))
        )
        assert again.to_dict() == candidate.to_dict()
        patched = clone_module(tac_module)
        again.apply(patched, bindings={again.holes[0].name: 0})


# ---------------------------------------------------------------------------
# End-to-end repair (the acceptance workloads)
# ---------------------------------------------------------------------------


def _repair(name: str, **overrides):
    workload = get(name)
    module = workload.compile()
    config = RepairConfig(esd=fast_config(), **overrides)
    return module, repair(module, workload.make_report(), config=config)


class TestRepairEndToEnd:
    def test_tac_bounds_guard_patch_validates(self, tac_module,
                                              tac_repair_result):
        module, result = tac_module, tac_repair_result
        assert result.found
        patch = result.patch
        assert patch.candidate.kind == "bounds-guard"
        assert patch.suspect_rank <= 3
        assert patch.bindings  # the fence came from the solver
        validation = patch.validation
        assert validation.ok and not validation.resynthesis_found
        assert validation.passing_preserved
        # Every synthesized passing execution replayed byte-identically.
        assert validation.identical_replays == len(validation.passing)
        # And independently: ESD really cannot synthesize the report
        # against the re-applied patch.
        patched = patch.apply_to(module)
        again = esd_synthesize(patched, get("tac").make_report(),
                               fast_config())
        assert not again.found

    def test_listing1_deadlock_window_patch_validates(self):
        _, result = _repair("listing1")
        assert result.found
        assert result.patch.suspect_rank <= 3
        assert result.patch.validation.ok
        assert result.patch.candidate.kind in ("branch-flip", "unlock-hoist")

    def test_paste_coreutils_patch_validates(self):
        _, result = _repair("paste")
        assert result.found
        assert result.patch.suspect_rank <= 3
        validation = result.patch.validation
        assert validation.ok and validation.passing_preserved

    def test_repair_result_summary_shape(self, tac_repair_result):
        summary = tac_repair_result.summary()
        assert summary["found"] is True
        assert summary["template"] == "bounds-guard"
        assert summary["candidates_tried"] >= 1
        assert summary["suspects"]

    def test_session_repair_and_localize(self):
        workload = get("tac")
        shared = RepairConfig()
        with ReproSession.from_source(workload.source, "tac",
                                      config=fast_config()) as session:
            ranking = session.localize(workload.make_report())
            assert ranking.best_rank([("main", 29)]) <= 3
            result = session.repair(workload.make_report(), config=shared)
            assert result.found
        # The session fills in its ESD budget on a private copy, never by
        # mutating the caller's config object.
        assert shared.esd is None


# ---------------------------------------------------------------------------
# Patch artifact
# ---------------------------------------------------------------------------


class TestPatchArtifact:
    def test_round_trip_and_reapply(self, tac_repair_result):
        result = tac_repair_result
        patch = result.patch
        data = json.loads(json.dumps(patch.to_dict()))
        assert data["format"] == "esd-patch-v1"
        assert data["verified"] is True
        again = Patch.from_dict(data)
        assert again.digest() == patch.digest()
        patched = again.apply_to(compile_source(get("tac").source, "tac"))
        behavior = concrete_behavior(patched,
                                     result.failing_execution.inputs)
        assert behavior.status != "bug"

    def test_digest_ignores_wall_clock_timing(self, tac_repair_result):
        patch = tac_repair_result.patch
        before = patch.digest()
        original_seconds = patch.validation.seconds
        patch.validation.seconds = original_seconds + 123.0
        try:
            assert patch.digest() == before
        finally:
            patch.validation.seconds = original_seconds

    def test_foreign_document_rejected(self):
        from repro.schema import SchemaVersionError

        with pytest.raises(SchemaVersionError, match="not a patch"):
            Patch.from_dict({"format": "something-else"})


# ---------------------------------------------------------------------------
# The paper's patch-verification loop (section 8), promoted from
# examples/triage_and_patch.py into CI-asserted behavior.
# ---------------------------------------------------------------------------


class TestPaperPatchVerification:
    def test_cosmetic_patch_is_still_synthesizable(self, tac_report):
        cosmetic = TAC.source.replace(
            'int *buf = read_input("file", 12);',
            'int *buf = read_input("file", 12);\n    // FIXME: band-aid\n',
        )
        result = ReproSession.from_source(
            cosmetic, "tac", config=fast_config()
        ).synthesize(tac_report)
        assert result.found  # the path to the bug still exists

    def test_correct_patch_defeats_synthesis(self, tac_report):
        fixed = TAC.source.replace(
            "while (buf[i] != 10) {",
            "while (i >= 0 && buf[i] != 10) {",
        )
        result = ReproSession.from_source(
            fixed, "tac", config=fast_config()
        ).synthesize(tac_report)
        assert not result.found  # paper: "the patch can be considered successful"

    def test_validate_patch_applies_the_same_criterion(
        self, tac_module, tac_report, tac_failing, tac_passing
    ):
        cosmetic = compile_source(TAC.source.replace(
            'int *buf = read_input("file", 12);',
            'int *buf = read_input("file", 12);\n    // FIXME: band-aid\n',
        ), "tac")
        rejected = validate_patch(
            tac_module, cosmetic, tac_report, tac_passing,
            failing=tac_failing, config=fast_config(),
        )
        assert not rejected.ok
        assert not rejected.failing_clean or rejected.resynthesis_found

        fixed = compile_source(TAC.source.replace(
            "while (buf[i] != 10) {",
            "while (i >= 0 && buf[i] != 10) {",
        ), "tac")
        accepted = validate_patch(
            tac_module, fixed, tac_report, tac_passing,
            failing=tac_failing, config=fast_config(),
        )
        assert accepted.ok
        assert accepted.passing_preserved


# ---------------------------------------------------------------------------
# Triage database repair outcomes + the service's repair job kind
# ---------------------------------------------------------------------------


class TestRepairIntegration:
    def test_triage_records_repair_outcome(self, tac_module, tac_report):
        session = ReproSession(tac_module, config=fast_config())
        outcome = session.triage(tac_report)
        assert outcome.synthesized
        entry = session.triage_db.record_repair(
            outcome.bug_id, "ee" * 32, verified=True
        )
        assert entry.patched
        assert session.triage_db.patched_count == 1

    def test_repair_job_through_the_service(self):
        workload = get("tac")
        config = fast_config()
        with ReproSession.from_source(workload.source, "tac",
                                      config=config) as session:
            job = session.submit(
                workload.make_report(), kind="repair",
                repair_config=RepairConfig(passing_count=3, esd=config),
            )
            record = session.wait(job.job_id, timeout=120)
            assert record.state == "FOUND"
            assert record.reason == "patched"
            assert "patch" in record.artifacts
            assert "execution" in record.artifacts
            assert record.result["kind"] == "repair"
            patch = Patch.from_dict(json.loads(
                session.service.fetch_artifact(job.job_id, kind="patch")
            ))
            assert patch.verified
            assert patch.candidate.kind == "bounds-guard"

    def test_repair_job_needs_source(self, tac_module, tac_report):
        from repro.api.jobs import JobError

        with ReproSession(tac_module, config=fast_config()) as session:
            with pytest.raises(JobError, match="source"):
                session.submit(tac_report, kind="repair")
