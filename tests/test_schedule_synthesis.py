"""Integration tests for thread schedule synthesis (paper section 4)."""

import pytest

from repro import ir
from repro.analysis import DistanceCalculator
from repro.concurrency import (
    ChainedPolicy,
    DeadlockSchedulePolicy,
    RaceDetector,
    RaceSchedulePolicy,
    common_stack_prefix,
)
from repro.lang import compile_source
from repro.search import (
    DFSSearcher,
    GoalSpec,
    ProximityGuidedSearcher,
    SearchBudget,
    explore,
)
from repro.symbex import BugKind, Executor

LISTING1 = """
int idx = 0;
int mode = 0;
mutex M1;
mutex M2;

void critical_section(int unused) {
    lock(M1);
    lock(M2);
    if (mode == 1 && idx == 1) {
        unlock(M1);
        lock(M1);
    }
    unlock(M2);
    unlock(M1);
}

int main() {
    if (getchar() == 'm') {
        idx = idx + 1;
    }
    int *env = getenv("mode");
    if (env[0] == 'Y') {
        mode = 1;
    } else {
        mode = 2;
    }
    int t1 = spawn(critical_section, 0);
    int t2 = spawn(critical_section, 0);
    join(t1);
    join(t2);
    return 0;
}
"""

ABBA = """
mutex A;
mutex B;

void worker(int unused) {
    lock(B);
    lock(A);
    unlock(A);
    unlock(B);
}

int main() {
    int t = spawn(worker, 0);
    lock(A);
    lock(B);
    unlock(B);
    unlock(A);
    join(t);
    return 0;
}
"""


def lock_refs(module, function):
    return [
        ref for ref, instr in module.functions[function].iter_instructions()
        if isinstance(instr, ir.MutexLock)
    ]


def deadlock_goal_predicate(expected_refs):
    """State is a goal if it deadlocked with blocked threads at exactly the
    reported lock statements."""
    expected = set(expected_refs)

    def is_goal(state):
        if state.status != "bug" or state.bug.kind is not BugKind.DEADLOCK:
            return False
        blocked = {
            t.pc for t in state.threads.values()
            if t.status == "blocked" and t.blocked_on and t.blocked_on[0] == "mutex"
        }
        return expected <= blocked

    return is_goal


class TestABBADeadlock:
    def synthesize(self, searcher_factory=None):
        module = compile_source(ABBA, "abba")
        worker_locks = lock_refs(module, "worker")
        main_locks = lock_refs(module, "main")
        # Inner locks per the coredump stacks: worker blocked at lock(A),
        # main blocked at lock(B).
        inner = frozenset({worker_locks[1], main_locks[1]})
        policy = DeadlockSchedulePolicy(inner)
        executor = Executor(module, policy=policy)
        distances = DistanceCalculator(module)
        final = GoalSpec(tuple(sorted(inner)), "deadlock")
        if searcher_factory is None:
            searcher = ProximityGuidedSearcher(distances, [], final)
            policy.boost = searcher.boost
        else:
            searcher = searcher_factory()
        outcome = explore(
            executor, searcher, executor.initial_state(),
            deadlock_goal_predicate(inner),
            SearchBudget(max_seconds=60),
        )
        return outcome, module

    def test_esd_finds_abba_deadlock(self):
        outcome, _ = self.synthesize()
        assert outcome.found
        state = outcome.goal_state
        assert state.bug.kind is BugKind.DEADLOCK
        assert len(state.bug.cycle) >= 2

    def test_bfs_also_finds_it(self):
        # DFS, notably, does NOT find this in reasonable time (the paper's
        # KC-DFS baseline found no paths either); breadth-first does.
        from repro.search import BFSSearcher

        outcome, _ = self.synthesize(searcher_factory=BFSSearcher)
        assert outcome.found

    def test_deadlock_cycle_names_both_threads(self):
        outcome, _ = self.synthesize()
        tids = {edge.waiter for edge in outcome.goal_state.bug.cycle}
        assert len(tids) == 2


class TestListing1Deadlock:
    """The paper's running example: deadlock requires getchar() == 'm',
    getenv("mode")[0] == 'Y', *and* the right preemptions."""

    def synthesize(self):
        from repro.analysis import find_intermediate_goals

        module = compile_source(LISTING1, "listing1")
        cs_locks = lock_refs(module, "critical_section")
        # Inner locks: line 12's lock(M1) (last lock in critical_section) for
        # one thread, line 9's lock(M2) (second lock) for the other.
        inner = frozenset({cs_locks[2], cs_locks[1]})
        policy = DeadlockSchedulePolicy(inner)
        executor = Executor(module, policy=policy)
        distances = DistanceCalculator(module)
        final = GoalSpec(tuple(sorted(inner)), "deadlock")
        intermediate = [
            GoalSpec(g.alternatives, f"ig:{g.variable}")
            for ref in sorted(inner)
            for g in find_intermediate_goals(module, ref)
        ]
        searcher = ProximityGuidedSearcher(distances, intermediate, final)
        policy.boost = searcher.boost
        outcome = explore(
            executor, searcher, executor.initial_state(),
            deadlock_goal_predicate(inner),
            SearchBudget(max_seconds=120, max_instructions=5_000_000),
        )
        return outcome, executor

    def test_esd_synthesizes_listing1_deadlock(self):
        outcome, executor = self.synthesize()
        assert outcome.found, f"search failed: {outcome.reason}"
        state = outcome.goal_state
        # The synthesized inputs must satisfy the paper's requirements.
        model = executor.solver.model(state.constraints)
        assert model is not None
        assert model.get("stdin0") == ord("m")
        assert model.get("env.mode.0") == ord("Y")

    def test_deadlock_involves_spawned_threads(self):
        outcome, _ = self.synthesize()
        blocked_tids = {
            t.tid for t in outcome.goal_state.threads.values()
            if t.status == "blocked"
        }
        # The two critical_section threads (1 and 2) are deadlocked.
        assert {1, 2} <= blocked_tids


class TestRaceSynthesis:
    RACY = """
    int shared = 0;
    mutex m;

    void writer(int v) {
        // BUG: unprotected write
        shared = v;
    }

    void reader(int unused) {
        lock(m);
        int copy = shared;
        assert(copy != 13);
        unlock(m);
    }

    int main() {
        int t1 = spawn(writer, 13);
        int t2 = spawn(reader, 0);
        join(t1);
        join(t2);
        return 0;
    }
    """

    def test_eraser_flags_unprotected_cell(self):
        module = compile_source(self.RACY, "racy")
        detector = RaceDetector()
        policy = RaceSchedulePolicy(detector)
        executor = Executor(module, policy=policy)
        outcome = explore(
            executor, DFSSearcher(), executor.initial_state(),
            lambda s: False, SearchBudget(max_seconds=30),
        )
        assert detector.racy_cells, "expected at least one racy cell"

    def test_race_preemption_finds_assert_failure(self):
        module = compile_source(self.RACY, "racy")
        detector = RaceDetector()
        policy = RaceSchedulePolicy(detector)
        executor = Executor(module, policy=policy)

        def is_goal(state):
            return (
                state.status == "bug" and state.bug.kind is BugKind.ASSERT_FAIL
            )

        outcome = explore(
            executor, DFSSearcher(), executor.initial_state(), is_goal,
            SearchBudget(max_seconds=60),
        )
        assert outcome.found

    def test_common_stack_prefix(self):
        assert common_stack_prefix([["main", "f", "g"], ["main", "f", "h"]]) == ["main", "f"]
        assert common_stack_prefix([["a"], ["b"]]) == []
        assert common_stack_prefix([]) == []


class TestChainedPolicy:
    def test_chained_policy_combines_forks(self):
        module = compile_source(ABBA, "abba")
        inner = frozenset(lock_refs(module, "worker") + lock_refs(module, "main"))
        chained = ChainedPolicy(
            DeadlockSchedulePolicy(inner), RaceSchedulePolicy(RaceDetector())
        )
        executor = Executor(module, policy=chained)
        outcome = explore(
            executor, DFSSearcher(), executor.initial_state(),
            lambda s: s.status == "bug" and s.bug.kind is BugKind.DEADLOCK,
            SearchBudget(max_seconds=60),
        )
        assert outcome.found
