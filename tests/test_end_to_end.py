"""End-to-end pipeline tests: buggy run -> coredump -> esd_synthesize ->
deterministic playback.  This is the paper's full workflow (sections 2-5)."""

import pytest

from repro import ir
from repro.baselines import Directive, ForcedSchedulePolicy
from repro.coredump import BugReport, coredump_from_state
from repro.core import (
    ESDConfig,
    TriageDatabase,
    esd_synthesize,
    extract_goal,
)
from repro.lang import compile_source
from repro.playback import play_back
from repro.search import SearchBudget
from repro.symbex import BugKind, ConcreteEnv, Executor, RecordedInputs


def lock_refs(module, function):
    return [
        ref for ref, instr in module.functions[function].iter_instructions()
        if isinstance(instr, ir.MutexLock)
    ]


def unlock_refs(module, function):
    return [
        ref for ref, instr in module.functions[function].iter_instructions()
        if isinstance(instr, ir.MutexUnlock)
    ]


ABBA = """
mutex A;
mutex B;

void worker(int unused) {
    lock(B);
    lock(A);
    unlock(A);
    unlock(B);
}

int main() {
    int t = spawn(worker, 0);
    lock(A);
    lock(B);
    unlock(B);
    unlock(A);
    join(t);
    return 0;
}
"""

CRASH = """
int parse_mode(int *s) {
    if (s[0] == 'x' && s[1] == 'y') {
        int *p = 0;
        return *p;
    }
    return 0;
}

int main() {
    int *m = getenv("MODE");
    return parse_mode(m);
}
"""


def make_abba_report():
    """Manifest the ABBA deadlock once with a scripted schedule and capture
    the coredump (the 'end-user run' ESD never observes)."""
    module = compile_source(ABBA, "abba")
    main_locks = lock_refs(module, "main")
    policy = ForcedSchedulePolicy([Directive(main_locks[0], 0, 1)])
    executor = Executor(module, env=ConcreteEnv(RecordedInputs()), policy=policy)
    state = executor.run_to_completion(executor.initial_state())
    assert state.status == "bug"
    assert state.bug.kind is BugKind.DEADLOCK
    dump = coredump_from_state(module, state)
    return module, BugReport(dump, "deadlock")


def make_crash_report():
    module = compile_source(CRASH, "crash")
    executor = Executor(
        module, env=ConcreteEnv(RecordedInputs(env={"MODE": "xy"}))
    )
    state = executor.run_to_completion(executor.initial_state())
    assert state.status == "bug"
    assert state.bug.kind is BugKind.NULL_DEREF
    dump = coredump_from_state(module, state)
    return module, BugReport(dump, "crash")


@pytest.fixture(scope="module")
def abba_synthesis():
    module, report = make_abba_report()
    result = esd_synthesize(
        module, report,
        ESDConfig(budget=SearchBudget(max_seconds=60)),
    )
    return module, report, result


@pytest.fixture(scope="module")
def crash_synthesis():
    module, report = make_crash_report()
    result = esd_synthesize(
        module, report,
        ESDConfig(budget=SearchBudget(max_seconds=60)),
    )
    return module, report, result


class TestCoredump:
    def test_deadlock_dump_has_blocked_threads(self):
        _, report = make_abba_report()
        dump = report.coredump
        assert dump.manifestation == "hang"
        blocked = dump.blocked_threads()
        assert len(blocked) >= 2
        assert all(t.blocked_kind == "mutex" for t in blocked[:2])

    def test_crash_dump_records_fault(self):
        _, report = make_crash_report()
        dump = report.coredump
        assert dump.manifestation == "crash"
        assert dump.bug_kind is BugKind.NULL_DEREF
        assert dump.fault_ref is not None
        assert dump.fault_ref.function == "parse_mode"

    def test_dump_round_trips_through_dict(self):
        _, report = make_abba_report()
        data = report.to_dict()
        restored = BugReport.from_dict(data)
        assert restored.coredump.to_dict() == report.coredump.to_dict()

    def test_goal_extraction_deadlock(self):
        module, report = make_abba_report()
        goal = extract_goal(module, report)
        assert goal.bug_class == "deadlock"
        assert len(goal.targets) == 2
        for ref in goal.targets:
            assert isinstance(module.instruction(ref), ir.MutexLock)

    def test_goal_extraction_crash(self):
        module, report = make_crash_report()
        goal = extract_goal(module, report)
        assert goal.bug_class == "crash"
        assert goal.targets == (report.coredump.fault_ref,)


class TestSynthesis:
    def test_deadlock_synthesized(self, abba_synthesis):
        _, _, result = abba_synthesis
        assert result.found, f"synthesis failed: {result.reason}"
        assert result.execution_file is not None
        assert result.execution_file.bug_kind == "deadlock"

    def test_crash_synthesized_with_inputs(self, crash_synthesis):
        _, _, result = crash_synthesis
        assert result.found, f"synthesis failed: {result.reason}"
        env = result.execution_file.inputs.env
        assert env.get("MODE", "").startswith("xy")

    def test_execution_file_round_trips(self, abba_synthesis, tmp_path):
        _, _, result = abba_synthesis
        path = tmp_path / "exec.json"
        result.execution_file.save(path)
        from repro.core import ExecutionFile

        loaded = ExecutionFile.load(path)
        assert loaded.fingerprint() == result.execution_file.fingerprint()

    def test_synthesis_reports_timings(self, abba_synthesis):
        _, _, result = abba_synthesis
        assert result.total_seconds > 0
        assert result.instructions > 0


class TestPlayback:
    def test_strict_playback_reproduces_deadlock(self, abba_synthesis):
        module, _, result = abba_synthesis
        playback = play_back(module, result.execution_file, mode="strict")
        assert playback.bug_reproduced
        assert playback.bug.kind is BugKind.DEADLOCK

    def test_happens_before_playback_reproduces_deadlock(self, abba_synthesis):
        module, _, result = abba_synthesis
        playback = play_back(module, result.execution_file, mode="happens-before")
        assert playback.bug_reproduced
        assert playback.bug.kind is BugKind.DEADLOCK

    def test_strict_playback_reproduces_crash(self, crash_synthesis):
        module, _, result = crash_synthesis
        playback = play_back(module, result.execution_file, mode="strict")
        assert playback.bug_reproduced
        assert playback.bug.kind in (BugKind.NULL_DEREF, BugKind.WILD_POINTER)

    def test_playback_is_repeatable(self, abba_synthesis):
        module, _, result = abba_synthesis
        first = play_back(module, result.execution_file, mode="strict")
        second = play_back(module, result.execution_file, mode="strict")
        assert first.bug_reproduced and second.bug_reproduced
        assert first.steps == second.steps

    def test_patched_program_no_longer_reaches_bug(self):
        """Paper section 5.2: after fixing the bug, re-run ESD; if no path is
        found, the patch is good.  Fix ABBA by ordering the locks."""
        fixed = ABBA.replace(
            "void worker(int unused) {\n    lock(B);\n    lock(A);",
            "void worker(int unused) {\n    lock(A);\n    lock(B);",
        ).replace(
            "    unlock(A);\n    unlock(B);\n}",
            "    unlock(B);\n    unlock(A);\n}",
        )
        module, report = make_abba_report()
        fixed_module = compile_source(fixed, "abba")
        result = esd_synthesize(
            fixed_module, report,
            ESDConfig(budget=SearchBudget(max_seconds=20)),
        )
        assert not result.found


class TestTriage:
    def test_same_bug_deduplicated(self, abba_synthesis):
        module, report, result = abba_synthesis
        database = TriageDatabase()
        bug_id, is_new = database.submit(result.execution_file)
        assert is_new
        # A second report of the same bug synthesizes the same execution.
        second = esd_synthesize(
            module, report, ESDConfig(budget=SearchBudget(max_seconds=60))
        )
        second_id, second_new = database.submit(second.execution_file)
        assert not second_new
        assert second_id == bug_id

    def test_different_bugs_get_different_ids(self, abba_synthesis, crash_synthesis):
        _, _, abba_result = abba_synthesis
        _, _, crash_result = crash_synthesis
        database = TriageDatabase()
        id_a, _ = database.submit(abba_result.execution_file)
        id_b, _ = database.submit(crash_result.execution_file)
        assert id_a != id_b
