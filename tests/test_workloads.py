"""Workload sanity: each evaluation program compiles, its scripted trigger
manifests exactly the documented bug, and goal extraction works on the
resulting coredump.  (Full synthesis timing lives in the benchmarks.)"""

import pytest

from repro import ir
from repro.core import ESDConfig, esd_synthesize, extract_goal
from repro.playback import play_back
from repro.search import SearchBudget
from repro.symbex import BugKind
from repro.workloads import ALL, FIGURE2, TABLE1, get, ls_source

WORKLOAD_NAMES = sorted(ALL)


class TestRegistry:
    def test_table1_has_eight_entries(self):
        assert len(TABLE1) == 8

    def test_figure2_has_twelve_entries(self):
        assert len(FIGURE2) == 12

    def test_names_unique(self):
        assert len(WORKLOAD_NAMES) == len(ALL)

    def test_hangs_and_crashes(self):
        hangs = [w for w in TABLE1 if w.bug_type == "deadlock"]
        crashes = [w for w in TABLE1 if w.bug_type == "crash"]
        assert {w.name for w in hangs} == {"minidb", "hawknl"}
        assert len(crashes) == 6


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEachWorkload:
    def test_compiles_and_verifies(self, name):
        module = get(name).compile()
        ir.verify_module(module)

    def test_trigger_manifests_documented_bug(self, name):
        workload = get(name)
        module, state = workload.trigger()
        assert state.status == "bug"
        assert state.bug.kind is workload.expected_kind

    def test_report_and_goal_extraction(self, name):
        workload = get(name)
        report = workload.make_report()
        module = workload.compile()
        goal = extract_goal(module, report)
        assert goal.bug_class == workload.bug_type
        assert goal.targets


class TestLsVariants:
    def test_variants_differ(self):
        sources = {ls_source(i) for i in range(1, 5)}
        assert len(sources) == 4

    def test_base_without_bug_markers(self):
        for i in range(1, 5):
            assert "/* BUG" not in ls_source(i)

    def test_ls_clean_run_without_flags(self):
        from repro.symbex import ConcreteEnv, Executor, RecordedInputs

        workload = get("ls1")
        module = workload.compile()
        executor = Executor(module, env=ConcreteEnv(RecordedInputs(args=["-l"], argc=2)))
        state = executor.run_to_completion(executor.initial_state())
        assert state.status == "exited"
        assert state.exit_code > 0  # printed some entries


class TestGhttpdCorruption:
    def test_dump_is_corrupted(self):
        dump = get("ghttpd").make_coredump()
        assert dump.corrupted
        faulting = dump.thread(dump.faulting_tid)
        assert len(faulting.frames) == 1

    def test_goal_extraction_repairs_stack(self):
        workload = get("ghttpd")
        report = workload.make_report()
        goal = extract_goal(workload.compile(), report)
        assert goal.targets[0].function == "log_request"


@pytest.mark.parametrize("name", ["ls1", "tac", "mkfifo"])
def test_quick_crash_synthesis_end_to_end(name):
    """Fast representatives of the crash set synthesize and play back."""
    workload = get(name)
    module = workload.compile()
    report = workload.make_report()
    result = esd_synthesize(
        module, report, ESDConfig(budget=SearchBudget(max_seconds=90))
    )
    assert result.found, f"{name}: {result.reason}"
    playback = play_back(module, result.execution_file, mode="strict")
    assert playback.bug_reproduced


def test_hawknl_deadlock_synthesis_end_to_end():
    workload = get("hawknl")
    module = workload.compile()
    report = workload.make_report()
    result = esd_synthesize(
        module, report, ESDConfig(budget=SearchBudget(max_seconds=120))
    )
    assert result.found, f"hawknl: {result.reason}"
    playback = play_back(module, result.execution_file, mode="strict")
    assert playback.bug_reproduced
    assert playback.bug.kind is BugKind.DEADLOCK
