"""The mutation corpus: deterministic enumeration, seeded stratified
selection, pipeline outcomes, byte-reproducible documents, and the
corpus CLI verb."""

import json

import pytest

from repro import ir
from repro.corpus import (
    MUTATION_CLASSES,
    CorpusProgram,
    default_programs,
    enumerate_mutations,
    mutant_workload,
    run_corpus,
    run_mutant,
    select_mutations,
)
from repro.frontend import compile_python_source
from repro.workloads.pyprograms import FIXED_SOURCES


@pytest.fixture(scope="module")
def pyrlock_module():
    return compile_python_source(FIXED_SOURCES["pyrlock"], "pyrlock")


@pytest.fixture(scope="module")
def programs():
    return default_programs()


class TestEnumeration:
    def test_deterministic(self, pyrlock_module):
        first = [m.to_dict() for m in enumerate_mutations(pyrlock_module)]
        second = [m.to_dict() for m in enumerate_mutations(pyrlock_module)]
        assert first == second
        assert first  # non-empty

    def test_all_classes_have_sites_somewhere(self, programs):
        kinds = set()
        for program in programs:
            kinds.update(
                m.kind for m in enumerate_mutations(program.compile()))
        assert kinds == set(MUTATION_CLASSES)

    def test_lock_swap_site_is_the_fixed_release(self, pyrlock_module):
        swaps = [m for m in enumerate_mutations(pyrlock_module)
                 if m.kind == "lock-swap"]
        # Exactly the hoisted master.release() in rl_enter can sink back
        # past the real.acquire() -- the inverse of the unlock-hoist fix.
        assert [(m.function,) for m in swaps] == [("rl_enter",)]

    def test_apply_clones_and_mutates(self, pyrlock_module):
        mutation = next(m for m in enumerate_mutations(pyrlock_module)
                        if m.kind == "cmp-flip")
        before = [m.to_dict() for m in enumerate_mutations(pyrlock_module)]
        mutant = mutation.apply(pyrlock_module)
        assert mutant is not pyrlock_module
        ir.verify_module(mutant)
        # The original is untouched.
        assert [m.to_dict()
                for m in enumerate_mutations(pyrlock_module)] == before
        block = mutant.functions[mutation.ref.function] \
            .blocks[mutation.ref.block]
        assert block.instruction_at(mutation.ref.index).op \
            == mutation.detail["to"]


class TestSelection:
    def test_same_seed_same_selection(self, pyrlock_module):
        a, _ = select_mutations(pyrlock_module, seed=5, count=10)
        b, _ = select_mutations(pyrlock_module, seed=5, count=10)
        assert [m.to_dict() for m in a] == [m.to_dict() for m in b]

    def test_different_seed_differs(self, pyrlock_module):
        a, _ = select_mutations(pyrlock_module, seed=1, count=10)
        b, _ = select_mutations(pyrlock_module, seed=2, count=10)
        assert [m.to_dict() for m in a] != [m.to_dict() for m in b]

    def test_stratified_never_drops_rare_classes(self, pyrlock_module):
        # lock-swap has a single site; every sample must include it.
        for seed in range(5):
            selection, total = select_mutations(
                pyrlock_module, seed=seed, count=8)
            assert total > 8
            assert "lock-swap" in {m.kind for m in selection}


class TestPipeline:
    def test_manifested_mutant_reproduces_and_localizes(self, programs):
        # The pytally off-by-one at the ring read (constant 8 -> 9 in the
        # bounds comparison): manifests, reproduces, localizes rank 1, and
        # repair lands exactly on the mutated statement.
        program = next(p for p in programs if p.name == "pytally")
        module = program.compile()
        mutation = next(
            m for m in enumerate_mutations(module)
            if m.kind == "off-by-one" and m.function == "total"
            and m.line == 11 and m.detail["delta"] == 1)
        outcome = run_mutant(program, module, mutation, "t-0001",
                             with_repair=True)
        assert outcome.status == "manifested"
        assert outcome.bug_type == "crash"
        assert outcome.reproduced
        assert outcome.top3
        assert outcome.repaired
        assert outcome.repaired_at_truth

    def test_always_covered_bound_is_a_measured_miss(self, programs):
        # Flipping the loop bound itself manifests and reproduces, but the
        # bound line is covered by passing runs too, so spectrum
        # localization ranks it outside the top 3: the corpus *measures*
        # this rather than hiding it.
        program = next(p for p in programs if p.name == "pytally")
        module = program.compile()
        mutation = next(
            m for m in enumerate_mutations(module)
            if m.kind == "cmp-flip" and m.detail.get("to") == "<=")
        outcome = run_mutant(program, module, mutation, "t-0004")
        assert outcome.status == "manifested"
        assert outcome.reproduced
        assert outcome.localization_rank is not None

    def test_lock_swap_manifests_deadlock(self, programs):
        program = next(p for p in programs if p.name == "pyrlock")
        module = program.compile()
        mutation = next(m for m in enumerate_mutations(module)
                        if m.kind == "lock-swap")
        outcome = run_mutant(program, module, mutation, "t-0002")
        assert outcome.status == "manifested"
        assert outcome.bug_type == "deadlock"
        assert outcome.reproduced

    def test_benign_mutant_stays_benign(self, programs):
        # Flipping a comparison ESD never covers concretely: print path.
        program = next(p for p in programs if p.name == "pytally")
        module = program.compile()
        benign = [m for m in enumerate_mutations(module)
                  if m.kind == "off-by-one" and m.function == "total"
                  and m.detail["delta"] == -1]
        outcome = run_mutant(program, module, benign[0], "t-0003")
        assert outcome.status in ("benign", "manifested")


class TestDocument:
    def test_byte_reproducible(self, programs):
        first = run_corpus(seed=99, count=12, programs=programs,
                           repair_every=0)
        second = run_corpus(seed=99, count=12, programs=programs,
                            repair_every=0)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(second, sort_keys=True)

    def test_schema_and_rates(self, programs):
        doc = run_corpus(seed=99, count=12, programs=programs,
                         repair_every=0)
        assert doc["schema"] == "esd-corpus-v1"
        assert doc["seed"] == 99
        totals = doc["totals"]
        assert totals["selected"] == 12
        assert 0.0 <= totals["repro_rate"] <= 1.0
        for row in doc["classes"].values():
            assert row["manifested"] >= row["reproduced"] >= 0
        assert len(doc["mutants"]) == 12
        for mutant in doc["mutants"]:
            assert mutant["class"] in MUTATION_CLASSES
            assert mutant["status"] in ("invalid", "benign", "manifested")

    def test_json_serializable_and_sorted(self, programs):
        doc = run_corpus(seed=99, count=6, programs=programs,
                         repair_every=0)
        blob = json.dumps(doc, sort_keys=True)
        assert json.loads(blob) == doc

    def test_embedded_metrics_snapshot_matches_totals(self, programs):
        from repro.obs import check_metrics_document

        doc = run_corpus(seed=99, count=6, programs=programs,
                         repair_every=1)
        snap = check_metrics_document(doc["metrics"])
        assert snap["meta"] == {"source": "corpus", "seed": 99,
                                "requested": 6}
        values = {name: entry["value"]
                  for name, entry in snap["metrics"].items()}
        totals = doc["totals"]
        for stage in ("selected", "manifested", "reproduced",
                      "repair_attempted", "repaired", "top3"):
            assert values[f"esd_corpus_{stage}_total"] == totals[stage]
        # The full counter family is always present, zeros included, and
        # the statuses partition the selection.
        assert values["esd_corpus_selected_total"] == (
            values["esd_corpus_invalid_total"]
            + values["esd_corpus_benign_total"]
            + values["esd_corpus_manifested_total"])


class TestMutantWorkload:
    def test_registered_mutant_is_first_class(self, programs):
        from repro.workloads import ALL, get

        program = next(p for p in programs if p.name == "pytally")
        module = program.compile()
        mutation = next(
            m for m in enumerate_mutations(module)
            if m.kind == "cmp-flip" and m.detail.get("to") == "<=")
        outcome = run_mutant(program, module, mutation, "wl-0001")
        assert outcome.status == "manifested"
        workload = mutant_workload(program, mutation, outcome, register=True)
        try:
            assert get(workload.name) is workload
            report = workload.make_report()
            assert report.bug_type == "crash"
        finally:
            ALL.pop(workload.name, None)

    def test_unmanifested_mutant_rejected(self, programs):
        program = next(p for p in programs if p.name == "pytally")
        module = program.compile()
        mutation = enumerate_mutations(module)[0]
        outcome = run_mutant(program, module, mutation, "wl-0002")
        if outcome.status != "manifested":
            with pytest.raises(ValueError, match="never manifested"):
                mutant_workload(program, mutation, outcome)


class TestCorpusCLI:
    def test_generate_run_report(self, tmp_path, capsys):
        from repro.cli import repro_main

        mutations_path = tmp_path / "mutations.json"
        code = repro_main(["corpus", "generate", "--count", "6",
                           "--seed", "3", "-o", str(mutations_path)])
        assert code == 0
        generated = json.loads(mutations_path.read_text())
        assert generated["schema"] == "esd-corpus-mutations-v1"
        assert sum(len(p["mutations"]) for p in generated["programs"]) == 6

        doc_path = tmp_path / "corpus.json"
        code = repro_main(["corpus", "run", "--count", "6", "--seed", "3",
                           "--repair-every", "0", "-o", str(doc_path)])
        assert code == 0
        doc = json.loads(doc_path.read_text())
        assert doc["schema"] == "esd-corpus-v1"
        capsys.readouterr()

        code = repro_main(["corpus", "report", str(doc_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_report_rejects_non_corpus_file(self, tmp_path, capsys):
        from repro.cli import repro_main

        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "other"}))
        assert repro_main(["corpus", "report", str(bogus)]) == 1

    def test_single_program_corpus(self, tmp_path, capsys):
        from repro.cli import repro_main

        program = tmp_path / "prog.py"
        program.write_text(FIXED_SOURCES["pytally"])
        doc_path = tmp_path / "one.json"
        code = repro_main(["corpus", "run", "--program", str(program),
                           "--count", "5", "--repair-every", "0",
                           "-o", str(doc_path)])
        assert code == 0
        doc = json.loads(doc_path.read_text())
        assert [p["name"] for p in doc["programs"]] == ["prog"]


class TestCustomCorpusProgram:
    def test_minic_program_mutates_too(self):
        # The engine is IR-level: a MiniC program works unchanged.
        source = """
        int main() {
            int i = 0;
            int s = 0;
            while (i < 4) { s = s + i; i = i + 1; }
            return s;
        }
        """
        program = CorpusProgram(name="mini", source=source, lang="esd")
        module = program.compile()
        sites = enumerate_mutations(module)
        assert {m.kind for m in sites} >= {"cmp-flip", "off-by-one",
                                           "stmt-del"}
