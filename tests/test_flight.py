"""The flight recorder, ``repro explain``, SSE job streaming, and the
benchmark history gate -- plus the invariant everything rides on: a
recorded synthesis produces byte-identical artifacts to an unrecorded
one."""

import json

import pytest

from repro.api import ReproSession
from repro.api.jobs import FOUND, JobSpec
from repro.cli import repro_main
from repro.obs import (
    FlightRecorder,
    check_flight_document,
    diff_flights,
    explain_flight,
    load_flight,
    render_diff,
    render_explain,
)
from repro.obs.history import (
    append_entry,
    compare_latest,
    flatten_numeric,
    history_path,
    load_history,
)
from repro.obs.history import main as history_main
from repro.schema import SchemaVersionError
from repro.service import ReproService
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import ServiceDaemon
from repro.workloads import get

# ---------------------------------------------------------------------------
# Recorder mechanics


class TestFlightRecorder:
    def test_disabled_recorder_is_inert(self):
        flight = FlightRecorder(enabled=False)
        flight.pick(1, queue=0, score=1.0, strategy="s", function="f",
                    instructions=10, solver_queries=1, static_answers=0)
        flight.add(2, 1)
        flight.drop(3, 1, "wp-dead")
        flight.end(2, 1, "goal")
        flight.mark("bug")
        flight.done("goal")
        assert len(flight) == 0
        counts = flight.counts()
        assert counts["picks"] == 0 and counts["reason"] == ""

    def test_aggregates_and_lineage(self):
        flight = FlightRecorder()
        flight.pick(1, queue=2, score=100.0, strategy="proximity",
                    function="main", instructions=50, solver_queries=3,
                    static_answers=1)
        flight.add(2, 1)
        flight.add(3, 1)
        flight.drop(3, 1, "distance-inf")
        flight.end(2, 1, "goal")
        flight.done("goal")
        counts = flight.counts()
        assert counts["picks"] == 1 and counts["adds"] == 2
        assert counts["drops"] == 1
        assert counts["ends"] == {"goal": 1}
        assert counts["kills"] == {"distance-inf": 1}
        assert counts["reason"] == "goal"
        kinds = [r["k"] for r in flight.records()]
        assert kinds == ["pick", "add", "add", "drop", "end", "done"]

    def test_bounded_buffer_keeps_exact_aggregates(self):
        flight = FlightRecorder(max_records=3)
        for sid in range(10):
            flight.end(sid, 0, "infeasible", why="wp-dead")
        assert len(flight) == 3
        counts = flight.counts()
        assert counts["dropped"] == 7
        assert counts["high_water"] == 3
        # The aggregates never lose a state even though the buffer did.
        assert counts["ends"] == {"infeasible": 10}
        assert counts["kills"] == {"wp-dead": 10}

    def test_document_round_trip_and_totals_merge(self, tmp_path):
        flight = FlightRecorder()
        flight.pick(1, queue=0, score=9.0, strategy="proximity",
                    function="f", instructions=5, solver_queries=0,
                    static_answers=0)
        flight.end(1, 0, "goal")
        flight.done("goal")
        flight.totals["states_explored"] = 1
        doc = flight.to_document(meta={"program": "demo"},
                                 totals={"solver_queries": 4})
        check_flight_document(doc)
        assert doc["format"] == "esd-searchlog-v1"
        assert doc["meta"]["program"] == "demo"
        # Owner-filled totals merge under the export-time ones.
        assert doc["totals"] == {"states_explored": 1, "solver_queries": 4}
        path = tmp_path / "flight.json"
        path.write_text(json.dumps(doc))
        assert load_flight(path)["records"] == doc["records"]

    def test_rejects_wrong_format_and_malformed_records(self):
        with pytest.raises(SchemaVersionError):
            check_flight_document({"format": "esd-trace-v1",
                                   "schema_version": 1})
        with pytest.raises(ValueError):
            check_flight_document({"format": "esd-searchlog-v1",
                                   "schema_version": 1, "counts": {},
                                   "records": [{"sid": 1}]})


# ---------------------------------------------------------------------------
# Recorded synthesis: byte identity + the explain acceptance gate

# Table 1 workloads with deterministic serial artifacts (same set the
# tracer identity tests pin) plus the real-Python workloads.
IDENTITY_WORKLOADS = ("tac", "paste", "mknod", "mkdir", "mkfifo", "minidb")
PY_WORKLOADS = ("pytally", "pyledger", "pyrlock")


class TestRecordedSynthesis:
    @pytest.mark.parametrize("name", IDENTITY_WORKLOADS)
    def test_artifacts_byte_identical_recorded_vs_unrecorded(self, name):
        workload = get(name)
        report = workload.make_report()
        plain = ReproSession(workload.compile(), workers=1).synthesize(report)
        recorded_session = ReproSession(workload.compile(), workers=1,
                                        flight=True)
        recorded = recorded_session.synthesize(report)
        assert plain.found and recorded.found
        assert (plain.execution_file.canonical_bytes()
                == recorded.execution_file.canonical_bytes())
        check_flight_document(recorded_session.flight_document())

    @pytest.mark.parametrize("name", PY_WORKLOADS)
    def test_python_workloads_byte_identical_under_observers(self, name):
        # One plain run pins the artifact; a traced run and a recorded run
        # must both reproduce it bit for bit.
        workload = get(name)
        report = workload.make_report()
        plain = ReproSession(workload.compile(), workers=1).synthesize(report)
        traced = ReproSession(workload.compile(), workers=1,
                              trace=True).synthesize(report)
        recorded = ReproSession(workload.compile(), workers=1,
                                flight=True).synthesize(report)
        assert plain.found and traced.found and recorded.found
        baseline = plain.execution_file.canonical_bytes()
        assert traced.execution_file.canonical_bytes() == baseline
        assert recorded.execution_file.canonical_bytes() == baseline

    def test_explain_attribution_gate_and_goal_path(self):
        workload = get("paste")
        session = ReproSession(workload.compile(), workers=1, flight=True)
        assert session.synthesize(workload.make_report()).found
        doc = session.flight_document()
        report = explain_flight(doc)
        assert report["outcome"] == "goal"
        # Acceptance gate: >= 95% of explored states are attributed.
        assert report["attribution"] >= 0.95
        assert report["picks"] == doc["counts"]["picks"] > 0
        assert report["goal_path"], "goal run must reconstruct its chain"
        assert report["goal_path"][-1]["reason"] == "goal"
        assert any(step.get("picks") for step in report["goal_path"])
        assert sum(report["subsystems"].values()) > 0
        assert report["functions"][0]["instructions"] > 0
        text = render_explain(report)
        assert "goal path decision chain" in text


# ---------------------------------------------------------------------------
# Explain on synthetic logs: subsystem folding and diffs


def synthetic_flight(picks, ends):
    """A minimal valid document: `picks` (sid, fn, instr) pick records,
    `ends` (sid, parent, reason, why) terminations."""
    flight = FlightRecorder()
    for sid, fn, instr in picks:
        flight.pick(sid, queue=1, score=100.0, strategy="proximity",
                    function=fn, instructions=instr, solver_queries=1,
                    static_answers=0)
    for sid, parent, reason, why in ends:
        if parent:
            flight.add(sid, parent)
        flight.end(sid, parent, reason, why=why)
    flight.done("goal" if any(e[2] == "goal" for e in ends) else "exhausted")
    return flight.to_document(
        totals={"states_explored": len({e[0] for e in ends})})


class TestExplain:
    def test_subsystem_folding(self):
        doc = synthetic_flight(
            picks=[(1, "main", 100)],
            ends=[(2, 1, "infeasible", "wp-dead"),
                  (3, 1, "infeasible", ""),
                  (4, 1, "exited", ""),
                  (5, 1, "infeasible", "step-limit"),
                  (6, 1, "goal", "")],
        )
        report = explain_flight(doc)
        subs = report["subsystems"]
        assert subs["wp"] == 1          # wp-dead -> wp
        assert subs["solver"] == 1      # untagged infeasible -> solver
        assert subs["completed"] == 1   # exited -> completed
        assert subs["budget"] == 1      # step-limit -> budget
        assert subs["goal"] == 1

    def test_goal_path_is_root_first_lineage(self):
        doc = synthetic_flight(
            picks=[(1, "main", 10), (2, "helper", 20), (2, "helper", 5)],
            ends=[(2, 1, "goal", ""), (3, 1, "infeasible", "")],
        )
        report = explain_flight(doc)
        assert [step["sid"] for step in report["goal_path"]] == [1, 2]
        leaf = report["goal_path"][-1]
        assert leaf["picks"] == 2 and leaf["instructions"] == 25
        assert leaf["function"] == "helper"

    def test_attribution_uses_engine_denominator(self):
        doc = synthetic_flight(picks=[], ends=[(1, 0, "exited", "")])
        doc["totals"]["states_explored"] = 4  # 3 states never recorded
        report = explain_flight(doc)
        assert report["attribution"] == 0.25

    def test_diff_ranks_function_movers(self):
        a = synthetic_flight(picks=[(1, "main", 100)],
                             ends=[(1, 0, "goal", "")])
        b = synthetic_flight(
            picks=[(1, "main", 100), (2, "helper", 900)],
            ends=[(1, 0, "goal", ""), (2, 1, "infeasible", "")],
        )
        diff = diff_flights(a, b)
        assert diff["headline"]["picks"]["delta"] == 1
        assert diff["headline"]["states_explored"] == {
            "a": 1, "b": 2, "delta": 1, "ratio": 2.0}
        assert diff["functions"][0]["function"] == "helper"
        assert diff["functions"][0]["delta"] == 900
        assert diff["ends"]["infeasible"]["delta"] == 1
        assert "largest movers" in render_diff(diff)

    def test_cli_explain_and_diff(self, tmp_path, capsys):
        workload = get("tac")
        program = tmp_path / "tac.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        flight_path = tmp_path / "flight.json"
        assert repro_main(["synth", str(dump), str(program), "--crash",
                           "-o", str(tmp_path / "exec.json"),
                           "--workers", "1",
                           "--flight", str(flight_path)]) == 0
        capsys.readouterr()

        assert repro_main(["explain", str(flight_path)]) == 0
        assert "outcome: goal" in capsys.readouterr().out

        assert repro_main(["explain", str(flight_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["attribution"] >= 0.95

        assert repro_main(["explain", str(flight_path),
                           "--diff", str(flight_path), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["headline"]["picks"]["delta"] == 0

    def test_cli_explain_rejects_non_flight_file(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_flight.json"
        bogus.write_text(json.dumps({"format": "esd-trace-v1",
                                     "schema_version": 1}))
        assert repro_main(["explain", str(bogus)]) == 1
        assert "not a search flight log" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# SSE streaming + the flight-aware service surface


@pytest.fixture(scope="module")
def flight_daemon():
    service = ReproService(max_workers=2, trace_jobs=True, record_flight=True)
    daemon = ServiceDaemon(service, port=0)
    daemon.start()
    yield daemon
    daemon.stop(graceful=False)


@pytest.fixture(scope="module")
def flight_client(flight_daemon):
    return ServiceClient(flight_daemon.url)


class TestSseStreaming:
    def test_stream_yields_events_then_terminal_done(self, flight_client):
        client = flight_client
        job_id = client.submit(JobSpec(workload="tac"))["job_id"]
        frames = list(client.stream(job_id))
        assert frames, "stream produced no frames"
        events = [event for event, _ in frames]
        assert events[-1] == "done"
        assert "flight" in events  # flight summary reaches followers
        done = frames[-1][1]
        assert done["job_id"] == job_id and done["state"] == FOUND
        # Every non-terminal frame is a job event with a sequence number.
        seqs = [data["seq"] for event, data in frames[:-1]]
        assert seqs == sorted(seqs)

    def test_stream_since_skips_replayed_events(self, flight_client):
        client = flight_client
        job_id = client.submit(JobSpec(workload="mkdir"))["job_id"]
        client.wait(job_id, timeout=120)
        full = list(client.stream(job_id))
        seqs = [data["seq"] for event, data in full[:-1]]
        resumed = list(client.stream(job_id, since=seqs[0]))
        resumed_seqs = [data["seq"] for event, data in resumed[:-1]]
        assert resumed_seqs == [s for s in seqs if s > seqs[0]]
        assert resumed[-1][0] == "done"

    def test_stream_unknown_job_404(self, flight_client):
        with pytest.raises(ServiceClientError) as err:
            list(flight_client.stream("jr-missing"))
        assert err.value.status == 404

    def test_flight_artifact_fetch_and_explain(self, flight_client):
        client = flight_client
        job_id = client.submit(JobSpec(workload="paste"))["job_id"]
        record = client.wait(job_id, timeout=120)
        assert record["state"] == FOUND
        assert "flight" in record["artifacts"]
        doc = check_flight_document(
            json.loads(client.fetch_job_artifact(job_id, kind="flight")))
        assert doc["meta"]["job_id"] == job_id
        assert explain_flight(doc)["attribution"] >= 0.95

    def test_cli_status_follow(self, flight_daemon, capsys):
        url = flight_daemon.url
        assert repro_main(["submit", "--workload", "mkfifo", "--url", url,
                           "--wait", "--json"]) == 0
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        assert repro_main(["status", job_id, "--url", url, "--follow"]) == 0
        out = capsys.readouterr().out
        assert "flight" in out
        assert f"job {job_id}: FOUND" in out

    def test_healthz_uptime_schemas_heartbeats_and_obs(self, flight_client):
        health = flight_client.health()
        assert health["uptime_seconds"] >= 0
        schemas = health["schemas"]
        assert schemas["searchlog"] == "esd-searchlog-v1"
        assert schemas["jobrecord"] == "esd-jobrecord-v1"
        ages = health["workers"]["heartbeat_age_seconds"]
        assert ages and all(age >= 0 for age in ages.values())
        assert set(health["obs"]) == {
            "trace_dropped_spans", "trace_span_high_water",
            "flight_dropped_records", "flight_record_high_water"}

    def test_obs_metric_families_exposed(self, flight_client):
        snap = flight_client.metrics()["metrics"]
        assert "esd_obs_flight_dropped_records_total" in snap
        assert "esd_obs_trace_dropped_spans_total" in snap
        assert snap["esd_obs_flight_record_high_water"]["type"] == "gauge"
        # Finished flight-recorded jobs pushed the high-water mark up.
        assert snap["esd_obs_flight_record_high_water"]["value"] > 0
        text = flight_client.metrics_text()
        assert "esd_obs_flight_record_high_water" in text
        assert "esd_obs_trace_span_high_water" in text


# ---------------------------------------------------------------------------
# Benchmark history


class TestBenchHistory:
    def record(self, seconds):
        return {
            "bench": "demo",
            "one_shot": {"wall_seconds": seconds, "queries": 100},
            "workloads": [
                {"workload": "tac", "search_seconds": seconds / 2},
                {"workload": "paste", "search_seconds": seconds / 4},
            ],
        }

    def test_append_load_and_host_sanitization(self, tmp_path):
        path = append_entry(tmp_path, "demo", self.record(1.0),
                            host="ci node/1")
        assert path == history_path(tmp_path, "demo", "ci node/1")
        assert path.name == "demo.ci_node_1.jsonl"
        append_entry(tmp_path, "demo", self.record(1.1), host="ci node/1")
        entries = load_history(path)
        assert len(entries) == 2
        assert entries[0]["record"]["one_shot"]["wall_seconds"] == 1.0

    def test_flatten_keys_list_rows_by_workload(self):
        flat = flatten_numeric(self.record(2.0))
        assert flat["one_shot.wall_seconds"] == 2.0
        assert flat["workloads[tac].search_seconds"] == 1.0
        assert flat["workloads[paste].search_seconds"] == 0.5
        assert "bench" not in flat  # strings are not metrics

    def test_compare_passes_then_flags_regression(self, tmp_path):
        path = append_entry(tmp_path, "demo", self.record(1.0), host="h")
        append_entry(tmp_path, "demo", self.record(1.2), host="h")
        report = compare_latest(path, max_ratio=1.5)
        assert report["passed"] and report["compared"] == 3

        append_entry(tmp_path, "demo", self.record(2.5), host="h")
        report = compare_latest(path, max_ratio=1.5)
        assert not report["passed"]
        metrics = {r["metric"] for r in report["regressions"]}
        assert "one_shot.wall_seconds" in metrics
        # Counters never gate: only *seconds* patterns are compared.
        assert all("queries" not in m for m in metrics)

    def test_min_baseline_resists_creeping_regressions(self, tmp_path):
        path = append_entry(tmp_path, "demo", self.record(1.0), host="h")
        # Three +40% steps: each passes vs the previous, not vs the min.
        for seconds in (1.4, 1.96, 2.74):
            append_entry(tmp_path, "demo", self.record(seconds), host="h")
        assert compare_latest(path, max_ratio=1.5,
                              baseline="previous")["passed"]
        assert not compare_latest(path, max_ratio=1.5,
                                  baseline="min")["passed"]

    def test_sub_threshold_baselines_are_skipped(self, tmp_path):
        path = append_entry(tmp_path, "demo", self.record(0.0001), host="h")
        append_entry(tmp_path, "demo", self.record(0.0009), host="h")
        report = compare_latest(path, max_ratio=1.5)
        assert report["passed"] and report["compared"] == 0

    def test_module_cli_exit_codes(self, tmp_path, capsys):
        assert history_main(["compare", str(tmp_path), "--bench", "ghost",
                             "--host", "h"]) == 2  # no history yet
        record_file = tmp_path / "record.json"
        record_file.write_text(json.dumps(self.record(1.0)))
        assert history_main(["append", str(tmp_path), str(record_file),
                             "--bench", "demo", "--host", "h"]) == 0
        append_entry(tmp_path, "demo", self.record(5.0), host="h")
        assert history_main(["compare", str(tmp_path), "--bench", "demo",
                             "--host", "h"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_repro_bench_history_and_compare(self, tmp_path, capsys):
        history_dir = tmp_path / "history"
        args = ["bench", "--workload", "tac", "--reports", "1",
                "--history", str(history_dir)]
        assert repro_main(args) == 0
        # A generous gate keeps run-2-vs-run-1 jitter-proof.
        assert repro_main(args + ["--compare",
                                  "--max-regression", "50"]) == 0
        path = history_path(history_dir, "bench_tac")
        assert len(load_history(path)) == 2
        capsys.readouterr()

        # Plant a baseline at the minimum comparable timing; with a
        # near-zero gate the next real run must read as a regression and
        # fail the bench, whatever its absolute speed.
        def floored(obj):
            if isinstance(obj, dict):
                return {k: (0.001 if isinstance(v, (int, float))
                            and not isinstance(v, bool) and "seconds" in k
                            else floored(v)) for k, v in obj.items()}
            if isinstance(obj, list):
                return [floored(v) for v in obj]
            return obj

        append_entry(history_dir, "bench_tac",
                     floored(load_history(path)[-1]["record"]))
        assert repro_main(args + ["--compare",
                                  "--max-regression", "0.01"]) == 1
