"""Tests for the ReproSession service API, the strategy/bug-class registry,
the unified `repro` CLI, and the indexed triage database."""

import json
import time

import pytest

import repro.core.synthesis as synthesis_mod
from repro.api import (
    ReproSession,
    UnknownBugClassError,
    UnknownStrategyError,
    registry,
)
from repro.cli import repro_main
from repro.core import ESDConfig, GoalError, TriageDatabase, esd_synthesize
from repro.core.goals import extract_goal
from repro.search import DFSSearcher, SearchBudget, SynthesisEvent
from repro.workloads import get


@pytest.fixture()
def tac():
    return get("tac")


@pytest.fixture()
def session(tac):
    return ReproSession(
        tac.compile(), config=ESDConfig(budget=SearchBudget(max_seconds=30))
    )


class TestCachedStatics:
    def test_second_synthesize_skips_static_rebuild(self, session, tac):
        first = session.synthesize(tac.make_report())
        second = session.synthesize(tac.make_report())
        assert first.found and second.found
        stats = session.static_stats
        assert stats.distance_builds == 1
        assert stats.goal_computes == 1
        assert stats.cache_hits == 1

    def test_distance_calculator_constructed_once_across_batch(
        self, session, tac, monkeypatch
    ):
        constructions = []
        real = synthesis_mod.DistanceCalculator

        class Spy(real):
            def __init__(self, module):
                constructions.append(module.name)
                super().__init__(module)

        monkeypatch.setattr(synthesis_mod, "DistanceCalculator", Spy)
        # The spy must see the batch's (lazy) build: fresh session.
        spied = ReproSession(tac.compile())
        batch = spied.synthesize_batch([tac.make_report() for _ in range(3)])
        assert batch.found_count == 3
        assert constructions == [tac.name]

    def test_one_shot_api_rebuilds_statics_every_call(self, tac, monkeypatch):
        constructions = []
        real = synthesis_mod.DistanceCalculator

        class Spy(real):
            def __init__(self, module):
                constructions.append(module.name)
                super().__init__(module)

        monkeypatch.setattr(synthesis_mod, "DistanceCalculator", Spy)
        module = tac.compile()
        for _ in range(2):
            assert esd_synthesize(module, tac.make_report()).found
        assert len(constructions) == 2


class TestBatch:
    def test_batch_synthesizes_all_reports(self, session, tac):
        reports = [tac.make_report() for _ in range(3)]
        batch = session.synthesize_batch(reports)
        assert len(batch) == 3
        assert batch.found_count == 3
        assert all(result.found for result in batch)
        # Warm calls pay (almost) nothing for the static phase.
        statics = [result.static_seconds for result in batch]
        assert sum(statics[1:]) < statics[0] + 0.05
        assert batch.total_seconds == pytest.approx(
            batch.static_seconds + batch.search_seconds
        )


class TestPortfolio:
    def test_first_win_returns_winner_and_merged_stats(self, session, tac):
        report = tac.make_report()
        variants = {
            "esd-seed0": ESDConfig(budget=SearchBudget(max_seconds=30)),
            "esd-seed1": ESDConfig(seed=1, budget=SearchBudget(max_seconds=30)),
            "dfs": ESDConfig(strategy="dfs", budget=SearchBudget(max_seconds=30)),
        }
        started = time.monotonic()
        portfolio = session.synthesize_portfolio(report, variants)
        wall = time.monotonic() - started
        assert portfolio.found
        assert portfolio.winner_name in variants
        assert portfolio.winner is portfolio.results[portfolio.winner_name]
        assert set(portfolio.results) == set(variants)
        # Every variant either finished or was cancelled by the winner.
        for result in portfolio.results.values():
            assert result.reason in ("goal", "cancelled", "budget", "exhausted")
        assert portfolio.total_instructions >= portfolio.winner.instructions
        assert wall < 25, "first-win cancellation did not bound the run"

    def test_cancellation_reason_propagates(self, session, tac):
        # A pre-set stop predicate cancels before the first pick.
        result = session.synthesize(
            tac.make_report(), should_stop=lambda: True
        )
        assert not result.found
        assert result.reason == "cancelled"

    def test_empty_variant_list_rejected(self, session, tac):
        with pytest.raises(ValueError):
            session.synthesize_portfolio(tac.make_report(), [])

    def test_unknown_variant_strategy_fails_fast(self, session, tac):
        # A typo'd strategy must raise before the good variant burns its
        # (long) budget.
        started = time.monotonic()
        with pytest.raises(UnknownStrategyError):
            session.synthesize_portfolio(tac.make_report(), {
                "good": ESDConfig(budget=SearchBudget(max_seconds=120)),
                "typo": ESDConfig(strategy="typpo"),
            })
        assert time.monotonic() - started < 10

    def test_variant_error_cancels_the_rest(self, session, tac, monkeypatch):
        # A mid-run failure in one variant cancels the others instead of
        # letting them run out their budgets behind the pool shutdown.
        import repro.service.service as service_mod

        real = service_mod.esd_synthesize
        def flaky(module, report, config=None, **kwargs):
            if config is not None and config.seed == 7:
                raise RuntimeError("variant blew up")
            return real(module, report, config, **kwargs)

        monkeypatch.setattr(service_mod, "esd_synthesize", flaky)
        report = tac.make_report()
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="variant blew up"):
            bad_only = {"boom": ESDConfig(seed=7)}
            session.synthesize_portfolio(report, bad_only)
        assert time.monotonic() - started < 10

    def test_variant_error_recorded_when_another_wins(self, session, tac,
                                                      monkeypatch):
        import repro.service.service as service_mod

        real = service_mod.esd_synthesize
        def flaky(module, report, config=None, **kwargs):
            if config is not None and config.seed == 7:
                raise RuntimeError("variant blew up")
            return real(module, report, config, **kwargs)

        monkeypatch.setattr(service_mod, "esd_synthesize", flaky)
        portfolio = session.synthesize_portfolio(tac.make_report(), {
            "good": ESDConfig(),
            "boom": ESDConfig(seed=7),
        })
        assert portfolio.found and portfolio.winner_name == "good"
        assert "boom" not in portfolio.results
        assert isinstance(portfolio.errors.get("boom"), RuntimeError)

    def test_sequence_variants_get_positional_names(self, session, tac):
        portfolio = session.synthesize_portfolio(
            tac.make_report(),
            [ESDConfig(), ESDConfig(seed=1)],
        )
        assert set(portfolio.results) == {"v0", "v1"}


class TestEvents:
    def test_on_progress_receives_structured_events(self, session, tac):
        events: list[SynthesisEvent] = []
        result = session.synthesize(tac.make_report(), on_progress=events.append)
        assert result.found
        kinds = [event.kind for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "done"
        assert events[-1].reason == "goal"
        assert events[-1].instructions == result.instructions

    def test_session_level_observer(self, tac):
        events = []
        watched = ReproSession(tac.compile(), on_progress=events.append)
        watched.synthesize(tac.make_report())
        assert any(event.kind == "done" for event in events)


class TestRegistry:
    def test_lookup_known_strategies(self):
        for name in ("esd", "dfs", "bfs", "random-path"):
            assert callable(registry.get_searcher(name))
        assert "esd" in registry.available_searchers()

    def test_unknown_strategy_raises_with_available_names(self):
        with pytest.raises(UnknownStrategyError, match="esd"):
            registry.get_searcher("does-not-exist")

    def test_unknown_bug_class_raises(self):
        with pytest.raises(UnknownBugClassError, match="crash"):
            registry.get_bug_class("does-not-exist")

    def test_unknown_strategy_surfaces_through_synthesize(self, session, tac):
        with pytest.raises(UnknownStrategyError):
            session.synthesize(
                tac.make_report(), ESDConfig(strategy="no-such-strategy")
            )

    def test_custom_searcher_is_used(self, session, tac, monkeypatch):
        calls = []
        monkeypatch.setitem(
            registry._searchers,
            "test-dfs",
            lambda d, i, f, c: calls.append("built") or DFSSearcher(),
        )
        result = session.synthesize(
            tac.make_report(),
            ESDConfig(strategy="test-dfs", budget=SearchBudget(max_seconds=30)),
        )
        assert calls == ["built"]
        assert result.found

    def test_plugin_bug_class_extends_extract_goal(self, tac, monkeypatch):
        module = tac.compile()
        report = tac.make_report()
        policy_calls = []

        def extract(mod, rep):
            rep = type(rep)(rep.coredump, "crash", description=rep.description)
            return extract_goal(mod, rep)

        def build_policies(m, g, c):
            policy_calls.append(g.bug_class)
            return []

        plugin = registry.BugClassPlugin(
            "test-hang", build_policies, extract=extract
        )
        monkeypatch.setitem(registry._bug_classes, "test-hang", plugin)
        report.bug_type = "test-hang"
        goal = extract_goal(module, report)
        assert goal.bug_class == "crash"

        # Synthesis must use the *plugin's* policies (keyed by the report's
        # bug type) even though the extracted goal reuses the crash shape.
        result = esd_synthesize(module, report)
        assert result.found
        assert policy_calls == ["crash"]

        report.bug_type = "really-unknown"
        with pytest.raises(GoalError):
            extract_goal(module, report)


class TestTriage:
    def test_session_triage_deduplicates(self, session, tac):
        first = session.triage(tac.make_report())
        second = session.triage(tac.make_report())
        assert first.synthesized and second.synthesized
        assert first.is_new and not second.is_new
        assert first.bug_id == second.bug_id
        assert len(session.triage_db) == 1

    def test_database_indexed_submit(self, session, tac):
        execution = session.synthesize(tac.make_report()).execution_file
        database = TriageDatabase()
        bug_id, is_new = database.submit(execution)
        assert is_new
        dup_id, dup_new = database.submit(execution)
        assert (dup_id, dup_new) == (bug_id, False)
        assert database.entries[0].duplicates == 1
        assert database._index[execution.fingerprint()] is database.entries[0]

    def test_merge_combines_shards(self, session, tac):
        paste = get("paste")
        paste_session = ReproSession(paste.compile())
        tac_exec = session.synthesize(tac.make_report()).execution_file
        paste_exec = paste_session.synthesize(paste.make_report()).execution_file

        shard_a = TriageDatabase()
        shard_a.submit(tac_exec)
        shard_a.submit(tac_exec)  # one duplicate recorded in the shard
        shard_b = TriageDatabase()
        shard_b.submit(tac_exec)
        shard_b.submit(paste_exec)

        mapping = shard_a.merge(shard_b)
        assert len(shard_a) == 2
        # tac collided: its shard-b report folds into shard-a's entry.
        assert shard_a.entries[0].duplicates == 2
        assert mapping[shard_b.entries[0].bug_id] == shard_a.entries[0].bug_id
        # paste was new: fresh local id, duplicate count preserved.
        assert shard_a.entries[1].execution is paste_exec
        # Merged entries stay indexed for later O(1) submits.
        dup_id, is_new = shard_a.submit(paste_exec)
        assert (dup_id, is_new) == (shard_a.entries[1].bug_id, False)

    def test_constructed_from_entries_rebuilds_index(self, session, tac):
        execution = session.synthesize(tac.make_report()).execution_file
        original = TriageDatabase()
        original.submit(execution)
        rebuilt = TriageDatabase(entries=list(original.entries))
        bug_id, is_new = rebuilt.submit(execution)
        assert not is_new
        assert bug_id == original.entries[0].bug_id
        new_id, _ = rebuilt.submit(
            type(execution).from_dict(
                {**execution.to_dict(), "bug_ref": "elsewhere"}
            )
        )
        assert new_id == bug_id + 1


class TestReproCli:
    @pytest.fixture()
    def tac_files(self, tmp_path, tac):
        program = tmp_path / "tac.minic"
        program.write_text(tac.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(tac.make_report().to_dict()))
        return program, dump, tmp_path / "execution.json"

    def test_synth_play_round_trip(self, tac_files, capsys):
        program, dump, output = tac_files
        assert repro_main(
            ["synth", str(dump), str(program), "--crash", "-o", str(output)]
        ) == 0
        assert output.exists()
        data = json.loads(output.read_text())
        assert data["format"] == "esd-execution-file-v1"
        out = capsys.readouterr().out
        assert "synthesized execution" in out

        assert repro_main(["play", str(program), str(output)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_synth_respects_instruction_budget_default(self, tac_files,
                                                       monkeypatch):
        # Regression: the old esdsynth rebuilt SearchBudget(max_seconds=...),
        # silently dropping the 20M-instruction default to 2M.
        program, dump, output = tac_files
        seen = {}
        real = synthesis_mod.esd_synthesize

        def spy(module, report, config=None, **kwargs):
            seen["budget"] = config.budget
            return real(module, report, config, **kwargs)

        monkeypatch.setattr(synthesis_mod, "esd_synthesize", spy)
        monkeypatch.setattr("repro.service.service.esd_synthesize", spy)
        # The spy observes the serial driver; pin the worker default so a
        # REPRO_WORKERS test matrix does not route around it.
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert repro_main(
            ["synth", str(dump), str(program), "--crash",
             "--max-seconds", "15", "-o", str(output)]
        ) == 0
        assert seen["budget"].max_instructions == 20_000_000
        assert seen["budget"].max_seconds == 15.0

    def test_synth_progress_and_strategy_flags(self, tac_files, capsys):
        program, dump, output = tac_files
        assert repro_main(
            ["synth", str(dump), str(program), "--crash", "-o", str(output),
             "--strategy", "random-path", "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "[start]" in err and "[done]" in err

    def test_triage_subcommand_deduplicates(self, tac_files, tmp_path, tac,
                                            capsys):
        program, dump, _ = tac_files
        second = tmp_path / "report2.json"
        second.write_text(json.dumps(tac.make_report().to_dict()))
        assert repro_main(
            ["triage", str(program), str(dump), str(second)]
        ) == 0
        out = capsys.readouterr().out
        assert "bug #1 (NEW" in out
        assert "bug #1 (duplicate" in out
        assert "1 distinct bug(s) from 2 report(s)" in out

    def test_bench_subcommand(self, capsys):
        assert repro_main(["bench", "--workload", "tac", "--reports", "3"]) == 0
        out = capsys.readouterr().out
        assert "amortization" in out

    def test_unknown_workload_bench(self, capsys):
        assert repro_main(["bench", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestEngineStats:
    def test_budget_exit_reports_states_explored(self, tac):
        # Regression: budget exits left stats.states_explored at 0.
        result = esd_synthesize(
            tac.compile(),
            tac.make_report(),
            ESDConfig(budget=SearchBudget(max_instructions=10, max_seconds=30)),
        )
        assert not result.found
        assert result.reason == "budget"
        assert result.states_explored >= 1
