"""Unit and property tests for the constraint solver."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import Result, Solver, binop, evaluate, make_var, negate


def fresh_solver():
    return Solver()


class TestBasicSat:
    def test_empty_is_sat(self):
        assert fresh_solver().check([]).is_sat

    def test_concrete_true_constraints_dropped(self):
        assert fresh_solver().check([1, 5]).is_sat

    def test_concrete_false_is_unsat(self):
        assert fresh_solver().check([0]).result is Result.UNSAT

    def test_single_equality(self):
        v = make_var("c0", 0, 255)
        solution = fresh_solver().check([binop("==", v, ord("m"))])
        assert solution.is_sat
        assert solution.model["c0"] == ord("m")

    def test_contradictory_equalities(self):
        v = make_var("c1", 0, 255)
        solution = fresh_solver().check(
            [binop("==", v, 1), binop("==", v, 2)]
        )
        assert solution.result is Result.UNSAT

    def test_range_conjunction(self):
        v = make_var("c2", 0, 255)
        solution = fresh_solver().check(
            [binop(">", v, 10), binop("<", v, 13)]
        )
        assert solution.is_sat
        assert solution.model["c2"] in (11, 12)

    def test_impossible_range(self):
        v = make_var("c3", 0, 255)
        solution = fresh_solver().check(
            [binop(">", v, 100), binop("<", v, 50)]
        )
        assert solution.result is Result.UNSAT

    def test_disequality_chain(self):
        v = make_var("c4", 0, 2)
        constraints = [binop("!=", v, 0), binop("!=", v, 1), binop("!=", v, 2)]
        assert fresh_solver().check(constraints).result is Result.UNSAT

    def test_model_satisfies_all(self):
        a = make_var("c5", 0, 100)
        b = make_var("c6", 0, 100)
        constraints = [
            binop("==", binop("+", a, b), 50),
            binop(">", a, 20),
            binop("<", b, 25),
        ]
        solution = fresh_solver().check(constraints)
        assert solution.is_sat
        for c in constraints:
            assert evaluate(c, solution.model) == 1


class TestArithmeticPropagation:
    def test_linear_equation(self):
        v = make_var("a0", 0, 1000)
        # 3*v + 7 == 37  ->  v == 10
        expr = binop("==", binop("+", binop("*", v, 3), 7), 37)
        solution = fresh_solver().check([expr])
        assert solution.is_sat
        assert solution.model["a0"] == 10

    def test_linear_equation_no_solution(self):
        v = make_var("a1", 0, 1000)
        # 3*v == 10 has no integer solution
        expr = binop("==", binop("*", v, 3), 10)
        assert fresh_solver().check([expr]).result is Result.UNSAT

    def test_negative_coefficient(self):
        v = make_var("a2", -50, 50)
        expr = binop("==", binop("*", v, -2), 30)
        solution = fresh_solver().check([expr])
        assert solution.is_sat
        assert solution.model["a2"] == -15

    def test_subtraction(self):
        a = make_var("a3", 0, 100)
        b = make_var("a4", 0, 100)
        constraints = [binop("==", binop("-", a, b), 7), binop("==", b, 3)]
        solution = fresh_solver().check(constraints)
        assert solution.model["a3"] == 10

    def test_two_var_inequality_system(self):
        a = make_var("a5", 0, 30)
        b = make_var("a6", 0, 30)
        constraints = [
            binop("<", a, b),
            binop("<", b, binop("+", a, 2)),  # b == a + 1
            binop("==", binop("+", a, b), 21),
        ]
        solution = fresh_solver().check(constraints)
        assert solution.is_sat
        assert (solution.model["a5"], solution.model["a6"]) == (10, 11)

    def test_large_domain_bisection(self):
        v = make_var("a7", -(2**31), 2**31 - 1)
        expr = binop("==", v, 123456789)
        solution = fresh_solver().check([expr])
        assert solution.is_sat
        assert solution.model["a7"] == 123456789


class TestLogicOperators:
    def test_disjunction(self):
        v = make_var("l0", 0, 9)
        expr = binop("||", binop("==", v, 3), binop("==", v, 7))
        solution = fresh_solver().check([expr])
        assert solution.is_sat
        assert solution.model["l0"] in (3, 7)

    def test_negation(self):
        v = make_var("l1", 0, 1)
        solution = fresh_solver().check([negate(binop("==", v, 0))])
        assert solution.model["l1"] == 1

    def test_conjunction_inside_expression(self):
        a = make_var("l2", 0, 5)
        b = make_var("l3", 0, 5)
        expr = binop("&&", binop("==", a, 2), binop("==", b, 3))
        solution = fresh_solver().check([expr])
        assert solution.model == {"l2": 2, "l3": 3}

    def test_unsat_conjunction(self):
        a = make_var("l4", 0, 5)
        expr = binop("&&", binop("==", a, 2), binop("==", a, 3))
        assert fresh_solver().check([expr]).result is Result.UNSAT


class TestCache:
    def test_repeat_query_hits_cache(self):
        solver = fresh_solver()
        v = make_var("k0", 0, 255)
        constraints = [binop("==", v, 5)]
        solver.check(constraints)
        before = solver.stats.cache_hits
        solver.check(constraints)
        assert solver.stats.cache_hits == before + 1

    def test_interning_makes_cache_effective(self):
        solver = fresh_solver()
        v = make_var("k1", 0, 255)
        solver.check([binop("<", v, 10)])
        before = solver.stats.cache_hits
        solver.check([binop("<", v, 10)])  # structurally equal, same object
        assert solver.stats.cache_hits == before + 1


# --- property-based tests ---------------------------------------------------

_OPS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def small_system(draw):
    """A random system over two byte-sized variables, brute-force checkable."""
    counter = draw(st.integers(0, 10**6))
    a = make_var(f"pa{counter}", 0, 15)
    b = make_var(f"pb{counter}", 0, 15)
    n = draw(st.integers(1, 4))
    constraints = []
    for _ in range(n):
        op = draw(st.sampled_from(_OPS))
        lhs = draw(st.sampled_from(["a", "b", "a+b", "a-b", "2a"]))
        rhs = draw(st.integers(-5, 35))
        lhs_expr = {
            "a": a,
            "b": b,
            "a+b": binop("+", a, b),
            "a-b": binop("-", a, b),
            "2a": binop("*", a, 2),
        }[lhs]
        constraints.append(binop(op, lhs_expr, rhs))
    return a, b, constraints


@settings(max_examples=120, deadline=None)
@given(small_system())
def test_solver_matches_brute_force(system):
    a, b, constraints = system
    concrete = [c for c in constraints if isinstance(c, int)]
    exprs = [c for c in constraints if not isinstance(c, int)]
    if any(c == 0 for c in concrete):
        brute_sat = False
    else:
        brute_sat = any(
            all(evaluate(e, {a.name: x, b.name: y}) for e in exprs)
            for x, y in itertools.product(range(16), range(16))
        )
    solution = Solver().check(constraints)
    assert solution.result is not Result.UNKNOWN
    assert solution.is_sat == brute_sat
    if solution.is_sat:
        model = dict(solution.model)
        model.setdefault(a.name, 0)
        model.setdefault(b.name, 0)
        assert all(evaluate(e, model) for e in exprs)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 255), st.integers(0, 10**6))
def test_equality_always_recovers_value(target, counter):
    v = make_var(f"pe{counter}", 0, 255)
    solution = Solver().check([binop("==", v, target)])
    assert solution.is_sat
    assert solution.model[v.name] == target


@settings(max_examples=60, deadline=None)
@given(st.integers(-100, 100), st.integers(1, 20), st.integers(0, 10**6))
def test_linear_solutions_are_exact(offset, coeff, counter):
    v = make_var(f"pl{counter}", -1000, 1000)
    target = coeff * 7 + offset
    expr = binop("==", binop("+", binop("*", v, coeff), offset), target)
    solution = Solver().check([expr])
    assert solution.is_sat
    assert solution.model[v.name] == 7
