"""Parallel exploration pool: sharding, stealing, checkpoints, resume.

Also covers the satellites that ride on this layer: replay-consistent
budget accounting, cross-worker solver-cache delta sync, and the CLI's
``--workers`` / ``--checkpoint`` / ``resume`` / ``--json`` surfaces.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import ReproSession
from repro.cli import repro_main
from repro.core import ESDConfig, ExecutionFile, build_search_setup
from repro.distrib import (
    ExplorationCheckpoint,
    ParallelExplorer,
    parallel_supported,
)
from repro.search import SearchBudget, explore
from repro.solver import CounterexampleCache, Result, Solution
from repro.workloads import get
from repro.workloads.ghttpd import hard_workload

pytestmark = pytest.mark.skipif(
    not parallel_supported(), reason="parallel pool requires fork"
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def hard():
    """A small ghttpd-hard variant: enough plateau to shard, fast enough
    for the test suite."""
    workload = hard_workload(4)
    return workload.compile(), workload.make_report(), workload


class TestParallelSynthesis:
    def test_two_workers_reproduce_the_serial_artifact(self):
        workload = get("ghttpd")
        module = workload.compile()
        report = workload.make_report()
        serial = ReproSession(module).synthesize(report)
        assert serial.found
        parallel = ParallelExplorer(
            module, report, ESDConfig(), workers=2, verify_snapshots=True
        ).run()
        assert parallel.found and parallel.reason == "goal"
        assert (parallel.execution_file.fingerprint()
                == serial.execution_file.fingerprint())

    def test_sharded_search_on_a_plateau_workload(self, hard):
        module, report, _ = hard
        events = []
        pool = ParallelExplorer(module, report, ESDConfig(), workers=2,
                                on_event=events.append)
        result = pool.run()
        assert result.found and result.reason == "goal"
        kinds = [e.kind for e in events]
        assert kinds[0] == "start" and kinds[-1] == "done"
        # Worker/shard attribution on the quantum progress events.
        assert any(e.kind == "progress" and e.worker >= 0 for e in events)
        assert result.instructions > 0 and result.states_explored > 0

    def test_parallel_deadlock_synthesis_plays_back(self):
        workload = get("minidb")
        module = workload.compile()
        session = ReproSession(module)
        result = session.synthesize(workload.make_report(), workers=2)
        assert result.found
        playback = session.play_back(result.execution_file)
        assert playback.bug_reproduced

    def test_session_workers_default_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        session = ReproSession(get("ghttpd").compile())
        assert session.default_workers == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert ReproSession(get("ghttpd").compile()).default_workers == 1


class TestCheckpointResume:
    def test_budget_exhausted_run_resumes_to_the_same_artifact(
        self, hard, tmp_path
    ):
        module, report, workload = hard
        serial = ReproSession(module).synthesize(report)
        assert serial.found

        ckpt = tmp_path / "frontier.json"
        config = ESDConfig()
        config.budget.max_instructions = 25_000  # exhausts mid-search
        first = ParallelExplorer(
            module, report, config, workers=2,
            checkpoint_path=str(ckpt), checkpoint_interval=0.05,
        ).run()
        assert not first.found and first.reason == "budget"
        assert ckpt.exists()

        checkpoint = ExplorationCheckpoint.load(ckpt)
        assert checkpoint.pending > 0
        assert checkpoint.instructions == first.instructions
        # Give the resumed leg room to finish (what the CLI's
        # `repro resume --max-instructions` does).
        checkpoint.config.budget.max_instructions = 20_000_000
        session = ReproSession.from_checkpoint(checkpoint)
        resumed = session.resume(checkpoint)
        assert resumed.found and resumed.reason == "goal"
        # Totals accumulate across legs.
        assert resumed.instructions > first.instructions
        assert (resumed.execution_file.fingerprint()
                == serial.execution_file.fingerprint())

    def test_checkpoint_document_roundtrip(self, hard, tmp_path):
        module, report, workload = hard
        ckpt = tmp_path / "ck.json"
        config = ESDConfig()
        config.budget.max_instructions = 25_000
        ParallelExplorer(module, report, config, workers=1,
                         checkpoint_path=str(ckpt),
                         checkpoint_interval=0.05).run()
        loaded = ExplorationCheckpoint.load(ckpt)
        assert loaded.module.name == module.name
        assert loaded.report.bug_type == report.bug_type
        assert loaded.config.budget.max_instructions == 25_000
        assert loaded.workers == 1
        assert loaded.pending == len(loaded.scores)

    def test_kill_minus_nine_then_cli_resume(self, hard, tmp_path):
        """The acceptance scenario: `repro synth --checkpoint` killed
        mid-synthesis completes via `repro resume` with the same artifact
        as an uninterrupted run."""
        module, report, workload = hard
        program = tmp_path / "prog.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(report.to_dict()))
        ckpt = tmp_path / "ck.json"
        out = tmp_path / "resumed.json"

        serial = ReproSession(module).synthesize(report)
        assert serial.found

        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "synth", str(dump), str(program),
             "-o", str(tmp_path / "never.json"), "--workers", "2",
             "--checkpoint", str(ckpt), "--checkpoint-interval", "0.05",
             # Slow the search down so the kill lands mid-synthesis.
             "--max-instructions", "100000000"],
            env=env, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 20.0
        while not ckpt.exists() and time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            # Checkpoint exists and the search is still running: kill -9.
            assert ckpt.exists()
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            assert repro_main(["resume", str(ckpt), "-o", str(out)]) == 0
            resumed = ExecutionFile.load(out)
        else:
            # The search won the race against the first checkpoint write;
            # the uninterrupted artifact still must match.
            assert proc.returncode == 0
            resumed = ExecutionFile.load(tmp_path / "never.json")
        # The CLI names the program after the source file; compare the
        # artifact minus that label (inputs, schedule, bug identity).
        assert (resumed.fingerprint()[1:]
                == serial.execution_file.fingerprint()[1:])


class TestBudgetAccounting:
    def test_replayed_sync_instructions_charged_once(self):
        """Satellite fix: a woken thread re-executes the blocking lock/wait/
        join instruction; the engine's budget must charge it once."""
        workload = get("hawknl")
        module = workload.compile()
        setup = build_search_setup(module, workload.make_report(), ESDConfig())
        outcome = explore(
            setup.executor, setup.searcher, setup.executor.initial_state(),
            setup.goal.matches, SearchBudget(max_seconds=120.0),
        )
        stats = setup.executor.stats
        assert stats.replayed > 0, "deadlock search must hit lock retries"
        assert outcome.stats.instructions == stats.instructions - stats.replayed

    def test_serial_and_sharded_budget_use_the_same_coin(self, hard):
        module, report, _ = hard
        config = ESDConfig()
        config.budget.max_instructions = 20_000
        serial = ReproSession(module).synthesize(report, config)
        parallel = ParallelExplorer(module, report, config, workers=2).run()
        # Both runs spend (approximately, for the pool: quantum granularity)
        # the same budget currency -- distinct instruction executions.
        assert serial.reason == "budget"
        assert parallel.reason == "budget"
        assert parallel.instructions <= 20_000 + 2 * 8192


class TestCacheDeltaSync:
    def test_drain_and_merge(self):
        source = CounterexampleCache()
        source.enable_delta_log()
        key_sat = frozenset({11, 22})
        key_unsat = frozenset({33, 44})
        source.insert(key_sat, Solution(Result.SAT, {"x": 5}))
        source.insert(key_unsat, Solution(Result.UNSAT))
        delta = source.drain_delta()
        assert len(delta) == 2
        assert source.drain_delta() == []  # drained

        sink = CounterexampleCache()
        assert sink.merge_delta(delta) == 2
        assert sink.stats.merged == 2
        hit = sink.lookup(key_sat, max_nodes=1000)
        assert hit is not None and hit[0] == "exact"
        assert hit[1].model == {"x": 5}
        hit = sink.lookup(key_unsat, max_nodes=1000)
        assert hit is not None and hit[1].result is Result.UNSAT

    def test_merged_entries_are_not_rejournaled(self):
        source = CounterexampleCache()
        source.enable_delta_log()
        source.insert(frozenset({1}), Solution(Result.UNSAT))
        delta = source.drain_delta()

        sink = CounterexampleCache()
        sink.enable_delta_log()
        sink.merge_delta(delta)
        assert sink.drain_delta() == []  # no echo back to the sender

    def test_duplicate_merge_is_idempotent(self):
        cache = CounterexampleCache()
        entry = ((5, 6), "unsat", None)
        assert cache.merge_delta([entry]) == 1
        assert cache.merge_delta([entry]) == 0


class TestCliJson:
    def test_triage_json_output(self, tmp_path, capsys):
        workload = get("tac")
        program = tmp_path / "prog.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        assert repro_main(
            ["triage", str(program), str(dump), str(dump), "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["distinct_bugs"] == 1
        assert data["failures"] == 0
        assert [r["new"] for r in data["reports"]] == [True, False]
        assert data["reports"][0]["bug_id"] == data["reports"][1]["bug_id"]

    def test_bench_json_output(self, capsys):
        assert repro_main(
            ["bench", "--workload", "ls1", "--reports", "2", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "ls1" and data["all_found"]
        assert data["session"]["distance_builds"] == 1
        assert data["solver"]["queries"] > 0

    def test_synth_workers_flag(self, tmp_path, capsys):
        workload = get("ghttpd")
        program = tmp_path / "prog.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        out = tmp_path / "exec.json"
        assert repro_main(
            ["synth", str(dump), str(program), "-o", str(out), "--workers", "2"]
        ) == 0
        assert ExecutionFile.load(out).bug_kind == "buffer-overflow"


class TestGracefulShutdown:
    def test_request_shutdown_checkpoints_and_reports_interrupted(
            self, hard, tmp_path):
        """Satellite: a graceful shutdown request (what the SIGTERM handler
        issues) stops the pool with reason 'interrupted' and writes a final
        resumable checkpoint."""
        workload = hard_workload(6)
        module, report = workload.compile(), workload.make_report()
        ckpt = tmp_path / "final.json"
        config = ESDConfig()
        config.budget.max_instructions = 100_000_000
        config.budget.max_seconds = 300.0
        pool = ParallelExplorer(module, report, config, workers=2,
                                checkpoint_path=str(ckpt),
                                checkpoint_interval=3600.0)
        import threading

        timer = threading.Timer(0.3, pool.request_shutdown)
        timer.start()
        try:
            result = pool.run()
        finally:
            timer.cancel()
        if result.found:
            pytest.skip("search won before the shutdown request landed")
        assert result.reason == "interrupted"
        assert ckpt.exists()
        loaded = ExplorationCheckpoint.load(ckpt)
        assert loaded.pending > 0
        # The checkpoint resumes to the same artifact as an uninterrupted run.
        session = ReproSession.from_checkpoint(loaded)
        resumed = session.resume(loaded)
        assert resumed.found
        serial = ReproSession(module).synthesize(report)
        assert (resumed.execution_file.fingerprint()
                == serial.execution_file.fingerprint())
