"""Concrete-execution tests of the VM: with concrete inputs the executor is a
deterministic interpreter."""

import pytest

from repro.lang import compile_source
from repro.symbex import BugKind, ConcreteEnv, Executor, RecordedInputs


def run(source, inputs=None, **cfg):
    module = compile_source(source)
    env = ConcreteEnv(inputs or RecordedInputs())
    executor = Executor(module, env=env)
    state = executor.run_to_completion(executor.initial_state())
    return state


class TestArithmetic:
    def test_exit_code_is_main_return(self):
        state = run("int main() { return 42; }")
        assert state.status == "exited"
        assert state.exit_code == 42

    def test_arith_chain(self):
        state = run("int main() { int x = 10; int y = x * 3 + 4; return y % 17; }")
        assert state.exit_code == 34 % 17

    def test_division_c_semantics(self):
        state = run("int main() { return (0 - 7) / 2; }")
        assert state.exit_code == -3

    def test_unary_ops(self):
        state = run("int main() { int x = 5; return -x + !0 + ~0; }")
        assert state.exit_code == -5 + 1 - 1

    def test_comparisons(self):
        state = run("int main() { return (3 < 4) + (4 <= 4) + (5 > 9) + (1 == 1); }")
        assert state.exit_code == 3

    def test_short_circuit_does_not_eval_rhs(self):
        # The rhs would crash (null deref) if evaluated.
        source = """
        int main() {
            int *p = 0;
            if (0 && *p == 1) { return 1; }
            return 2;
        }
        """
        state = run(source)
        assert state.status == "exited"
        assert state.exit_code == 2

    def test_while_loop(self):
        state = run(
            "int main() { int i = 0; int s = 0;"
            " while (i < 10) { s = s + i; i = i + 1; } return s; }"
        )
        assert state.exit_code == 45

    def test_for_loop(self):
        state = run(
            "int main() { int s = 0; for (int i = 1; i <= 5; i = i + 1) { s = s + i; } return s; }"
        )
        assert state.exit_code == 15

    def test_nested_calls(self):
        source = """
        int square(int x) { return x * x; }
        int add(int a, int b) { return a + b; }
        int main() { return add(square(3), square(4)); }
        """
        assert run(source).exit_code == 25

    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
        assert run(source).exit_code == 55

    def test_function_pointer_call(self):
        source = """
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main() {
            int *f = &twice;
            if (1 == 2) { f = &thrice; }
            return f(7);
        }
        """
        assert run(source).exit_code == 14

    def test_global_state(self):
        source = """
        int counter = 100;
        void bump(int by) { counter = counter + by; }
        int main() { bump(1); bump(2); return counter; }
        """
        assert run(source).exit_code == 103


class TestMemory:
    def test_array_roundtrip(self):
        source = """
        int main() {
            int a[4];
            for (int i = 0; i < 4; i = i + 1) { a[i] = i * i; }
            return a[0] + a[1] + a[2] + a[3];
        }
        """
        assert run(source).exit_code == 14

    def test_global_array_init(self):
        source = "int a[4] = {5, 6, 7, 8};\nint main() { return a[2]; }"
        assert run(source).exit_code == 7

    def test_pointer_passing(self):
        source = """
        void set(int *p, int v) { *p = v; }
        int main() { int x = 0; set(&x, 9); return x; }
        """
        assert run(source).exit_code == 9

    def test_malloc_and_use(self):
        source = """
        int main() {
            int *p = malloc(3);
            p[0] = 1; p[1] = 2; p[2] = 3;
            int s = p[0] + p[1] + p[2];
            free(p);
            return s;
        }
        """
        assert run(source).exit_code == 6

    def test_free_null_is_noop(self):
        state = run("int main() { int *p = 0; free(p); return 1; }")
        assert state.status == "exited"

    def test_string_literal(self):
        source = 'int main() { return strlen("hello"); }'
        assert run(source).exit_code == 5

    def test_prelude_strcmp(self):
        source = 'int main() { return strcmp("abc", "abd"); }'
        assert run(source).exit_code == ord("c") - ord("d")

    def test_prelude_strcpy_strcat(self):
        source = """
        int main() {
            int buf[16];
            strcpy(buf, "ab");
            strcat(buf, "cd");
            return strlen(buf);
        }
        """
        assert run(source).exit_code == 4

    def test_atoi(self):
        source = 'int main() { return atoi("-123"); }'
        assert run(source).exit_code == -123

    def test_pointer_difference(self):
        source = """
        int main() {
            int a[8];
            int *p = &a[2];
            int *q = &a[7];
            return q - p;
        }
        """
        assert run(source).exit_code == 5


class TestBugsDetected:
    def bug_of(self, source, inputs=None):
        state = run(source, inputs)
        assert state.status == "bug", f"expected bug, got {state.status}"
        return state.bug

    def test_null_deref(self):
        bug = self.bug_of("int main() { int *p = 0; return *p; }")
        assert bug.kind is BugKind.NULL_DEREF

    def test_out_of_bounds_write(self):
        bug = self.bug_of("int main() { int a[2]; a[5] = 1; return 0; }")
        assert bug.kind is BugKind.OUT_OF_BOUNDS

    def test_out_of_bounds_read(self):
        bug = self.bug_of("int main() { int a[2]; return a[2]; }")
        assert bug.kind is BugKind.OUT_OF_BOUNDS

    def test_use_after_free(self):
        bug = self.bug_of(
            "int main() { int *p = malloc(2); free(p); return p[0]; }"
        )
        assert bug.kind is BugKind.USE_AFTER_FREE

    def test_double_free(self):
        bug = self.bug_of("int main() { int *p = malloc(2); free(p); free(p); return 0; }")
        assert bug.kind is BugKind.DOUBLE_FREE

    def test_invalid_free_of_interior_pointer(self):
        bug = self.bug_of("int main() { int *p = malloc(4); free(&p[1]); return 0; }")
        assert bug.kind is BugKind.INVALID_FREE

    def test_invalid_free_of_global(self):
        bug = self.bug_of("int g[2];\nint main() { free(&g[0]); return 0; }")
        assert bug.kind is BugKind.INVALID_FREE

    def test_division_by_zero(self):
        bug = self.bug_of("int main() { int z = 0; return 5 / z; }")
        assert bug.kind is BugKind.DIV_BY_ZERO

    def test_assert_failure(self):
        bug = self.bug_of("int main() { int x = 3; assert(x == 4); return 0; }")
        assert bug.kind is BugKind.ASSERT_FAIL

    def test_abort(self):
        bug = self.bug_of("int main() { abort(); return 0; }")
        assert bug.kind is BugKind.ABORT

    def test_stack_use_after_return(self):
        source = """
        int *escape() { int local = 5; return &local; }
        int main() { int *p = escape(); return *p; }
        """
        bug = self.bug_of(source)
        assert bug.kind is BugKind.USE_AFTER_FREE

    def test_bug_records_line(self):
        source = "int main() {\nint *p = 0;\nreturn *p;\n}"
        bug = self.bug_of(source)
        assert bug.line == 3


class TestConcreteInputs:
    def test_stdin_bytes(self):
        source = """
        int main() {
            int a = getchar();
            int b = getchar();
            return a * 256 + b;
        }
        """
        state = run(source, RecordedInputs(stdin=[1, 2]))
        assert state.exit_code == 258

    def test_stdin_exhausted_yields_zero(self):
        state = run("int main() { return getchar(); }", RecordedInputs())
        assert state.exit_code == 0

    def test_env_string(self):
        source = """
        int main() {
            int *mode = getenv("MODE");
            if (mode[0] == 'Y') { return 1; }
            return 0;
        }
        """
        assert run(source, RecordedInputs(env={"MODE": "Y"})).exit_code == 1
        assert run(source, RecordedInputs(env={"MODE": "N"})).exit_code == 0

    def test_getenv_same_buffer(self):
        source = """
        int main() {
            int *a = getenv("X");
            int *b = getenv("X");
            return a == b;
        }
        """
        assert run(source, RecordedInputs(env={"X": "v"})).exit_code == 1

    def test_args(self):
        source = """
        int main() {
            if (argc() < 2) { return 100; }
            int *first = arg(1);
            return atoi(first);
        }
        """
        assert run(source, RecordedInputs(args=["77"])).exit_code == 77
        assert run(source, RecordedInputs(args=[])).exit_code == 100

    def test_output_capture(self):
        source = """
        int main() {
            print_str("value:");
            print_int(42);
            return 0;
        }
        """
        state = run(source)
        assert state.output == ["value:", "42"]


class TestThreadsConcrete:
    def test_two_threads_increment(self):
        source = """
        int counter = 0;
        mutex m;
        void worker(int n) {
            for (int i = 0; i < n; i = i + 1) {
                lock(m);
                counter = counter + 1;
                unlock(m);
            }
        }
        int main() {
            int t1 = spawn(worker, 10);
            int t2 = spawn(worker, 10);
            join(t1);
            join(t2);
            return counter;
        }
        """
        state = run(source)
        assert state.status == "exited"
        assert state.exit_code == 20

    def test_join_returns_after_exit(self):
        source = """
        int done = 0;
        void w(int x) { done = x; }
        int main() { int t = spawn(w, 5); join(t); return done; }
        """
        assert run(source).exit_code == 5

    def test_condvar_pingpong(self):
        source = """
        mutex m;
        cond c;
        int ready = 0;
        int got = 0;
        void consumer(int unused) {
            lock(m);
            while (ready == 0) {
                wait(c, m);
            }
            got = ready;
            unlock(m);
        }
        int main() {
            int t = spawn(consumer, 0);
            lock(m);
            ready = 33;
            signal(c);
            unlock(m);
            join(t);
            return got;
        }
        """
        state = run(source)
        assert state.status == "exited"
        assert state.exit_code == 33

    def test_self_deadlock_detected(self):
        source = """
        mutex m;
        int main() { lock(m); lock(m); return 0; }
        """
        state = run(source)
        assert state.status == "bug"
        assert state.bug.kind is BugKind.DEADLOCK

    def test_invalid_unlock(self):
        source = """
        mutex m;
        int main() { unlock(m); return 0; }
        """
        state = run(source)
        assert state.status == "bug"
        assert state.bug.kind is BugKind.INVALID_UNLOCK

    def test_abba_deadlock_with_forced_schedule(self):
        # Round-robin scheduling alone will not deadlock this program (each
        # thread holds both locks briefly); the deadlock needs a preemption
        # between the two acquisitions, which schedule synthesis will find.
        source = """
        mutex a;
        mutex b;
        void w1(int x) { lock(a); lock(b); unlock(b); unlock(a); }
        int main() { int t = spawn(w1, 0); lock(b); lock(a); unlock(a); unlock(b); join(t); return 0; }
        """
        state = run(source)
        # With the default cooperative scheduler, main runs to completion
        # before the spawned thread gets the CPU; no deadlock manifests.
        assert state.status in ("exited", "bug")

    def test_segments_recorded(self):
        source = """
        int x = 0;
        void w(int v) { x = v; }
        int main() { int t = spawn(w, 1); join(t); return x; }
        """
        state = run(source)
        segments = state.finish_segments()
        assert sum(s.instrs for s in segments) == state.steps
        assert {s.tid for s in segments} == {0, 1}

    def test_sync_log_ordering(self):
        source = """
        mutex m;
        int main() { lock(m); unlock(m); return 0; }
        """
        state = run(source)
        ops = [e.op for e in state.sync_log]
        assert ops[0] == "lock"
        assert "unlock" in ops
