"""Unit tests for the MiniC parser."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse


def parse_single_function(body: str) -> ast.FuncDef:
    program = parse("int main() {\n" + body + "\n}")
    assert len(program.functions) == 1
    return program.functions[0]


class TestTopLevel:
    def test_global_scalar(self):
        program = parse("int g;")
        assert program.globals[0].name == "g"
        assert program.globals[0].kind == "int"

    def test_global_with_init(self):
        program = parse("int g = 5;")
        assert isinstance(program.globals[0].init, ast.IntLit)

    def test_global_array(self):
        program = parse("int a[8];")
        decl = program.globals[0]
        assert decl.kind == "array"
        assert decl.array_size == 8

    def test_global_array_with_init_list(self):
        program = parse("int a[3] = {1, 2, -3};")
        assert program.globals[0].init_list == [1, 2, -3]

    def test_mutex_and_cond(self):
        program = parse("mutex m;\ncond c;")
        assert [d.kind for d in program.globals] == ["mutex", "cond"]

    def test_function_with_params(self):
        program = parse("int add(int a, int b) { return a + b; }")
        assert program.functions[0].params == ["a", "b"]

    def test_pointer_param(self):
        program = parse("void f(int *p) { return; }")
        assert program.functions[0].params == ["p"]

    def test_void_function(self):
        program = parse("void f() { }")
        assert program.functions[0].name == "f"

    def test_mixed_globals_and_functions(self):
        program = parse("int g;\nint main() { return g; }\nint h;")
        assert len(program.globals) == 2
        assert len(program.functions) == 1


class TestStatements:
    def test_local_decl_with_init(self):
        func = parse_single_function("int x = 3;")
        decl = func.body[0]
        assert isinstance(decl, ast.VarDecl)
        assert isinstance(decl.init, ast.IntLit)

    def test_pointer_decl(self):
        func = parse_single_function("int *p;")
        assert func.body[0].kind == "ptr"

    def test_local_array(self):
        func = parse_single_function("int buf[16];")
        assert func.body[0].array_size == 16

    def test_assignment(self):
        func = parse_single_function("int x; x = 1;")
        assert isinstance(func.body[1], ast.Assign)

    def test_array_assignment(self):
        func = parse_single_function("int a[4]; a[2] = 9;")
        assign = func.body[1]
        assert isinstance(assign.target, ast.Index)

    def test_deref_assignment(self):
        func = parse_single_function("int *p; *p = 1;")
        assign = func.body[1]
        assert isinstance(assign.target, ast.Unary)
        assert assign.target.op == "*"

    def test_if_else(self):
        func = parse_single_function("if (1) { return 1; } else { return 2; }")
        stmt = func.body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_else_if_chain(self):
        func = parse_single_function(
            "if (1) { return 1; } else if (2) { return 2; } else { return 3; }"
        )
        stmt = func.body[0]
        nested = stmt.else_body[0]
        assert isinstance(nested, ast.If)
        assert len(nested.else_body) == 1

    def test_if_without_braces(self):
        func = parse_single_function("if (1) return 1;")
        assert isinstance(func.body[0].then_body[0], ast.Return)

    def test_while(self):
        func = parse_single_function("while (1) { break; }")
        stmt = func.body[0]
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.body[0], ast.Break)

    def test_for_full(self):
        func = parse_single_function("int i; for (i = 0; i < 10; i = i + 1) { continue; }")
        stmt = func.body[1]
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None
        assert stmt.cond is not None
        assert stmt.step is not None

    def test_for_with_decl_init(self):
        func = parse_single_function("for (int i = 0; i < 3; i = i + 1) { }")
        stmt = func.body[0]
        assert isinstance(stmt.init, ast.VarDecl)

    def test_for_empty_clauses(self):
        func = parse_single_function("for (;;) { break; }")
        stmt = func.body[0]
        assert stmt.init is None
        assert stmt.cond is None
        assert stmt.step is None

    def test_return_void(self):
        func = parse_single_function("return;")
        assert func.body[0].value is None


class TestExpressions:
    def expr(self, text):
        func = parse_single_function(f"int x; x = {text};")
        return func.body[1].value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_precedence_cmp_over_and(self):
        e = self.expr("a < b && c > d")
        assert e.op == "&&"
        assert e.lhs.op == "<"

    def test_parentheses(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.lhs.op == "+"

    def test_left_associativity(self):
        e = self.expr("10 - 3 - 2")
        assert e.op == "-"
        assert e.lhs.op == "-"

    def test_unary_chain(self):
        e = self.expr("!!a")
        assert e.op == "!"
        assert e.operand.op == "!"

    def test_address_of(self):
        e = self.expr("&g")
        assert e.op == "&"

    def test_deref(self):
        e = self.expr("*p + 1")
        assert e.op == "+"
        assert e.lhs.op == "*"

    def test_call_no_args(self):
        e = self.expr("getchar()")
        assert isinstance(e, ast.CallExpr)
        assert e.args == []

    def test_call_with_args(self):
        e = self.expr("f(1, a + 2)")
        assert len(e.args) == 2

    def test_nested_index(self):
        e = self.expr("a[b[0]]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.index, ast.Index)

    def test_string_argument(self):
        e = self.expr('getenv("mode")')
        assert isinstance(e.args[0], ast.StrLit)
        assert e.args[0].value == "mode"

    def test_char_literal_is_int(self):
        e = self.expr("'m'")
        assert isinstance(e, ast.IntLit)
        assert e.value == ord("m")

    def test_shift_expression(self):
        e = self.expr("1 << 4")
        assert e.op == "<<"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = 1 }")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0;")

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse("42;")

    def test_break_is_statement_level(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = break; }")

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as err:
            parse("int main() {\nint x = ;\n}")
        assert err.value.line == 2


class TestColumns:
    def test_parse_error_carries_column(self):
        import pytest

        from repro.lang.parser import ParseError, parse

        with pytest.raises(ParseError) as info:
            parse("int main() { return x }")
        assert info.value.line == 1
        assert info.value.col == 23

    def test_nodes_carry_columns(self):
        from repro.lang.parser import parse

        program = parse("int main() {\n    return 7;\n}")
        ret = program.functions[0].body[0]
        assert (ret.line, ret.col) == (2, 5)
