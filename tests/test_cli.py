"""Tests for the esdsynth / esdplay command-line front ends."""

import json

import pytest

from repro.cli import esdplay_main, esdsynth_main
from repro.workloads import get


@pytest.fixture()
def tac_files(tmp_path):
    workload = get("tac")
    program = tmp_path / "tac.minic"
    program.write_text(workload.source)
    report = workload.make_report()
    dump = tmp_path / "report.json"
    dump.write_text(json.dumps(report.to_dict()))
    return program, dump, tmp_path / "execution.json"


class TestEsdSynth:
    def test_synthesizes_and_writes_execution(self, tac_files, capsys):
        program, dump, output = tac_files
        code = esdsynth_main([str(dump), str(program), "--crash", "-o", str(output)])
        assert code == 0
        assert output.exists()
        data = json.loads(output.read_text())
        assert data["format"] == "esd-execution-file-v1"
        assert data["bug_kind"] == "buffer-overflow"
        out = capsys.readouterr().out
        assert "synthesized execution" in out

    def test_bug_type_from_report_when_flag_omitted(self, tac_files):
        program, dump, output = tac_files
        code = esdsynth_main([str(dump), str(program), "-o", str(output)])
        assert code == 0

    def test_failure_exit_code(self, tmp_path, capsys):
        # A report pointing at a patched program: no path exists.
        workload = get("tac")
        report = workload.make_report()
        fixed = workload.source.replace(
            "while (buf[i] != 10) {",
            "while (i >= 0 && buf[i] != 10) {",
        )
        program = tmp_path / "tac.minic"
        program.write_text(fixed)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(report.to_dict()))
        code = esdsynth_main(
            [str(dump), str(program), "--crash", "--max-seconds", "10",
             "-o", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "no execution found" in capsys.readouterr().err


class TestEsdPlay:
    def test_playback_reproduces(self, tac_files, capsys):
        program, dump, output = tac_files
        assert esdsynth_main([str(dump), str(program), "--crash", "-o", str(output)]) == 0
        code = esdplay_main([str(program), str(output)])
        assert code == 0
        assert "reproduced" in capsys.readouterr().out

    def test_happens_before_mode(self, tac_files):
        program, dump, output = tac_files
        assert esdsynth_main([str(dump), str(program), "--crash", "-o", str(output)]) == 0
        assert esdplay_main([str(program), str(output), "--mode", "happens-before"]) == 0
