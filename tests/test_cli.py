"""Tests for the esdsynth / esdplay command-line front ends."""

import json

import pytest

from repro.cli import esdplay_main, esdsynth_main
from repro.workloads import get


@pytest.fixture()
def tac_files(tmp_path):
    workload = get("tac")
    program = tmp_path / "tac.minic"
    program.write_text(workload.source)
    report = workload.make_report()
    dump = tmp_path / "report.json"
    dump.write_text(json.dumps(report.to_dict()))
    return program, dump, tmp_path / "execution.json"


class TestEsdSynth:
    def test_synthesizes_and_writes_execution(self, tac_files, capsys):
        program, dump, output = tac_files
        code = esdsynth_main([str(dump), str(program), "--crash", "-o", str(output)])
        assert code == 0
        assert output.exists()
        data = json.loads(output.read_text())
        assert data["format"] == "esd-execution-file-v1"
        assert data["bug_kind"] == "buffer-overflow"
        out = capsys.readouterr().out
        assert "synthesized execution" in out

    def test_bug_type_from_report_when_flag_omitted(self, tac_files):
        program, dump, output = tac_files
        code = esdsynth_main([str(dump), str(program), "-o", str(output)])
        assert code == 0

    def test_failure_exit_code(self, tmp_path, capsys):
        # A report pointing at a patched program: no path exists.
        workload = get("tac")
        report = workload.make_report()
        fixed = workload.source.replace(
            "while (buf[i] != 10) {",
            "while (i >= 0 && buf[i] != 10) {",
        )
        program = tmp_path / "tac.minic"
        program.write_text(fixed)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(report.to_dict()))
        code = esdsynth_main(
            [str(dump), str(program), "--crash", "--max-seconds", "10",
             "-o", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "no execution found" in capsys.readouterr().err


class TestEsdPlay:
    def test_playback_reproduces(self, tac_files, capsys):
        program, dump, output = tac_files
        assert esdsynth_main([str(dump), str(program), "--crash", "-o", str(output)]) == 0
        code = esdplay_main([str(program), str(output)])
        assert code == 0
        assert "reproduced" in capsys.readouterr().out

    def test_happens_before_mode(self, tac_files):
        program, dump, output = tac_files
        assert esdsynth_main([str(dump), str(program), "--crash", "-o", str(output)]) == 0
        assert esdplay_main([str(program), str(output), "--mode", "happens-before"]) == 0


class TestTriageDb:
    def test_triage_db_accumulates_across_invocations(self, tmp_path, capsys):
        from repro.cli import repro_main
        from repro.core import TriageDatabase

        workload = get("tac")
        program = tmp_path / "tac.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        db = tmp_path / "triage.json"

        code = repro_main(["triage", str(program), str(dump),
                           "--db", str(db), "--json"])
        assert code == 0
        first = json.loads(capsys.readouterr().out)
        assert first["distinct_bugs"] == 1
        assert first["preloaded_bugs"] == 0
        bug_id = first["reports"][0]["bug_id"]
        assert first["reports"][0]["new"] is True
        assert db.exists()

        # Second invocation: the persisted database makes the same report a
        # duplicate of the existing bug instead of bug #1 of a fresh run.
        code = repro_main(["triage", str(program), str(dump),
                           "--db", str(db), "--json"])
        assert code == 0
        second = json.loads(capsys.readouterr().out)
        assert second["preloaded_bugs"] == 1
        assert second["distinct_bugs"] == 1
        assert second["reports"][0]["bug_id"] == bug_id
        assert second["reports"][0]["new"] is False

        loaded = TriageDatabase.load(db)
        assert len(loaded) == 1
        assert loaded.entries[0].duplicates == 1

    def test_triage_rejects_foreign_db(self, tmp_path, capsys):
        from repro.cli import repro_main

        workload = get("tac")
        program = tmp_path / "tac.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        db = tmp_path / "not-a-db.json"
        db.write_text(json.dumps({"format": "something-else"}))
        code = repro_main(["triage", str(program), str(dump),
                           "--db", str(db)])
        assert code == 1
        assert "cannot load triage db" in capsys.readouterr().err


class TestPlayCoverage:
    def test_emits_per_line_hit_counts_to_stdout(self, tac_files, capsys):
        from repro.cli import repro_main

        program, dump, output = tac_files
        assert repro_main(["synth", str(dump), str(program),
                           "-o", str(output)]) == 0
        capsys.readouterr()
        code = repro_main(["play", str(program), str(output), "--coverage"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "esd-coverage-v1"
        assert data["status"] == "bug"
        # The unbounded backward scan (line 29) is hit and is the end site.
        assert data["functions"]["main"]["29"] >= 1
        assert data["end_sites"] == [{"function": "main", "line": 29}]

    def test_writes_coverage_file(self, tac_files, tmp_path):
        from repro.cli import repro_main

        program, dump, output = tac_files
        assert repro_main(["synth", str(dump), str(program),
                           "-o", str(output)]) == 0
        cov = tmp_path / "coverage.json"
        assert repro_main(["play", str(program), str(output),
                           "--coverage", str(cov)]) == 0
        data = json.loads(cov.read_text())
        assert "main" in data["functions"]


class TestRepairCommand:
    def test_writes_validated_patch(self, tac_files, capsys):
        from repro.cli import repro_main

        program, dump, _ = tac_files
        patch_path = program.parent / "patch.json"
        code = repro_main(["repair", str(dump), str(program),
                           "-o", str(patch_path), "--max-seconds", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PATCHED" in out
        assert "top suspects" in out
        data = json.loads(patch_path.read_text())
        assert data["format"] == "esd-patch-v1"
        assert data["verified"] is True

    def test_json_output(self, tac_files, capsys):
        from repro.cli import repro_main

        program, dump, _ = tac_files
        patch_path = program.parent / "patch.json"
        code = repro_main(["repair", str(dump), str(program),
                           "-o", str(patch_path), "--json",
                           "--max-seconds", "60"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["found"] is True
        assert data["patch"]["candidate"]["kind"] == "bounds-guard"
        assert data["localization"]["suspects"]

    def test_unrepairable_report_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import repro_main

        # A report against the already-fixed program: synthesis finds no
        # failing execution, so there is nothing to repair.
        workload = get("tac")
        fixed = workload.source.replace(
            "while (buf[i] != 10) {",
            "while (i >= 0 && buf[i] != 10) {",
        )
        program = tmp_path / "tac.minic"
        program.write_text(fixed)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        code = repro_main(["repair", str(dump), str(program),
                           "--max-seconds", "15"])
        assert code == 1
        assert "no validated patch" in capsys.readouterr().err


class TestGracefulInterrupt:
    def test_sigterm_writes_final_checkpoint_and_resume_completes(
            self, tmp_path):
        """Satellite: SIGTERM to `repro synth --checkpoint` exits cleanly
        with a final checkpoint (reason 'interrupted') instead of dying
        mid-search; `repro resume` finishes the job."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        from repro.cli import repro_main
        from repro.core import ExecutionFile
        from repro.distrib import parallel_supported
        from repro.workloads.ghttpd import hard_workload

        if not parallel_supported():
            pytest.skip("parallel pool requires fork")

        workload = hard_workload(4)
        program = tmp_path / "hard.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        ckpt = tmp_path / "ck.json"
        out = tmp_path / "resumed.json"

        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONPATH=repo_src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "synth", str(dump), str(program),
             "-o", str(tmp_path / "never.json"), "--workers", "2",
             "--checkpoint", str(ckpt), "--checkpoint-interval", "0.05",
             "--max-instructions", "100000000"],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        deadline = time.monotonic() + 20.0
        while not ckpt.exists() and time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is not None:
            # The search finished before the first checkpoint: nothing to
            # interrupt, and the artifact is already correct.
            assert proc.returncode == 0
            return
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        stderr = proc.stderr.read()
        assert code == 1
        assert "interrupted" in stderr
        assert "repro resume" in stderr  # the hint names the next command
        assert ckpt.exists()
        assert repro_main(["resume", str(ckpt), "-o", str(out)]) == 0
        assert ExecutionFile.load(out).bug_kind == "buffer-overflow"


class TestPythonFrontendCLI:
    """`.py` programs flow through every program-taking verb: the
    extension selects the frontend, `--lang` overrides it."""

    @pytest.fixture()
    def pytally_files(self, tmp_path):
        from repro.cli import repro_main  # noqa: F401  (import check)

        workload = get("pytally")
        program = tmp_path / "pytally.py"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        return program, dump, tmp_path / "execution.json"

    def test_synth_and_play_py_by_extension(self, pytally_files, capsys):
        from repro.cli import repro_main

        program, dump, output = pytally_files
        assert repro_main(["synth", str(dump), str(program),
                           "-o", str(output)]) == 0
        assert json.loads(output.read_text())["bug_kind"] == "buffer-overflow"
        assert repro_main(["play", str(program), str(output)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_lang_flag_overrides_extension(self, pytally_files, capsys):
        from repro.cli import repro_main

        program, dump, output = pytally_files
        # Forcing the MiniC frontend on Python text is a polite input
        # error (exit 1 + message), not a traceback.
        assert repro_main(["synth", str(dump), str(program),
                           "--lang", "esd", "-o", str(output)]) == 1
        renamed = program.with_suffix(".txt")
        renamed.write_text(program.read_text())
        assert repro_main(["synth", str(dump), str(renamed),
                           "--lang", "python", "-o", str(output)]) == 0

    def test_lint_py_program(self, pytally_files, capsys):
        from repro.cli import repro_main

        program, _, _ = pytally_files
        assert repro_main(["lint", str(program)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_frontend_error_is_polite(self, tmp_path, capsys):
        from repro.cli import repro_main

        bad = tmp_path / "bad.py"
        bad.write_text("def main():\n    return {1: 2}\n")
        assert repro_main(["lint", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "Dict" in err

    def test_python_workload_flows_through_lint(self, capsys):
        from repro.cli import repro_main

        # The static lint sees the seeded deadlock in the Python workload:
        # findings mean exit 1, and lock-order-inversion is among them.
        assert repro_main(["lint", "--workload", "pyrlock"]) == 1
        assert "lock-order-inversion" in capsys.readouterr().out
