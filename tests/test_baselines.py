"""Tests for the comparison systems: KC, stress testing, scripted schedules."""

import pytest

from repro import ir
from repro.baselines import (
    ChessPreemptionPolicy,
    Directive,
    ForcedSchedulePolicy,
    RandomSchedulePolicy,
    kc_find_path,
    stress_test,
)
from repro.core import extract_goal
from repro.lang import compile_source
from repro.search import SearchBudget
from repro.symbex import BugKind, ConcreteEnv, Executor, RecordedInputs
from repro.workloads import get

SIMPLE_CRASH = """
int main() {
    int c = getchar();
    if (c == 'k') {
        abort();
    }
    return 0;
}
"""


class TestKC:
    def test_kc_dfs_finds_shallow_input_bug(self):
        module = compile_source(SIMPLE_CRASH)
        result = kc_find_path(
            module,
            lambda s: s.status == "bug" and s.bug.kind is BugKind.ABORT,
            strategy="dfs",
            budget=SearchBudget(max_seconds=20),
        )
        assert result.found

    def test_kc_random_path_finds_shallow_input_bug(self):
        module = compile_source(SIMPLE_CRASH)
        result = kc_find_path(
            module,
            lambda s: s.status == "bug" and s.bug.kind is BugKind.ABORT,
            strategy="random-path",
            budget=SearchBudget(max_seconds=20),
        )
        assert result.found

    def test_unknown_strategy_rejected(self):
        module = compile_source(SIMPLE_CRASH)
        with pytest.raises(ValueError):
            kc_find_path(module, lambda s: False, strategy="bogus")

    def test_preemption_bound_limits_forking(self):
        source = """
        mutex m;
        int counter = 0;
        void w(int n) {
            for (int i = 0; i < 3; i = i + 1) {
                lock(m);
                counter = counter + 1;
                unlock(m);
            }
        }
        int main() {
            int t = spawn(w, 0);
            w(1);
            join(t);
            return counter;
        }
        """
        module = compile_source(source)
        result = kc_find_path(
            module, lambda s: False, strategy="dfs",
            budget=SearchBudget(max_seconds=10, max_instructions=400_000),
            preemption_bound=1,
        )
        # With bound 1 the schedule tree is finite and small: the search
        # exhausts rather than hitting the budget.
        assert result.outcome.reason == "exhausted"

    def test_kc_times_out_on_minidb(self):
        """The headline Figure 2 shape: KC cannot reproduce the real
        deadlock at a budget where ESD succeeds in well under a second."""
        workload = get("minidb")
        module = workload.compile()
        goal = extract_goal(module, workload.make_report())
        result = kc_find_path(
            module, goal.matches, strategy="dfs",
            budget=SearchBudget(max_seconds=5),
        )
        assert not result.found


class TestStress:
    def test_stress_misses_schedule_sensitive_deadlock(self):
        workload = get("hawknl")
        module = workload.compile()
        goal = extract_goal(module, workload.make_report())
        result = stress_test(
            module, is_goal=goal.matches, max_runs=300, max_seconds=10, seed=1,
            preempt_probability=0.02,
        )
        assert not result.found
        assert result.runs > 10  # it did actually run

    def test_stress_finds_trivial_input_bug_eventually(self):
        module = compile_source(SIMPLE_CRASH)
        result = stress_test(module, max_runs=3000, max_seconds=20, seed=3)
        # 1/96 chance per run of drawing 'k': near-certain within 3000 runs.
        assert result.found

    def test_stress_counts_bug_kinds(self):
        module = compile_source(SIMPLE_CRASH)
        result = stress_test(module, max_runs=3000, max_seconds=20, seed=4)
        if result.found:
            assert result.bug_kinds_seen.get("abort", 0) >= 1


class TestForcedSchedule:
    def test_directives_fire_in_order(self):
        workload = get("listing1")
        module, state = workload.trigger()
        assert state.bug.kind is BugKind.DEADLOCK

    def test_random_schedule_deterministic_per_seed(self):
        source = """
        int x = 0;
        mutex m;
        void w(int v) { lock(m); x = x + v; unlock(m); }
        int main() {
            int t1 = spawn(w, 1);
            int t2 = spawn(w, 2);
            join(t1); join(t2);
            return x;
        }
        """
        module = compile_source(source)

        def run(seed):
            executor = Executor(
                module, env=ConcreteEnv(RecordedInputs()),
                policy=RandomSchedulePolicy(seed=seed),
            )
            state = executor.run_to_completion(executor.initial_state())
            return [(s.tid, s.instrs) for s in state.finish_segments()]

        assert run(5) == run(5)
