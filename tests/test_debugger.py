"""Tests for the gdb-like debugger over deterministic playback."""

import pytest

from repro.core import ESDConfig, esd_synthesize
from repro.debugger import Debugger
from repro.search import SearchBudget
from repro.symbex import BugKind
from repro.workloads import get


@pytest.fixture(scope="module")
def hawknl_session():
    workload = get("hawknl")
    module = workload.compile()
    report = workload.make_report()
    result = esd_synthesize(
        module, report, ESDConfig(budget=SearchBudget(max_seconds=60))
    )
    assert result.found
    return module, result.execution_file


@pytest.fixture(scope="module")
def tac_session():
    workload = get("tac")
    module = workload.compile()
    report = workload.make_report()
    result = esd_synthesize(
        module, report, ESDConfig(budget=SearchBudget(max_seconds=60))
    )
    assert result.found
    return module, result.execution_file


class TestBreakpoints:
    def test_break_at_function_entry(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        dbg.break_at("nl_close")
        stop = dbg.cont()
        assert stop.reason == "breakpoint"
        assert stop.function == "nl_close"

    def test_break_at_line(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        # Line of 'int len = 0;' in the tac source.
        line = next(
            i + 1 for i, text in enumerate(module.source_lines)
            if "int len = 0" in text
        )
        dbg.break_at("main", line)
        stop = dbg.cont()
        assert stop.reason == "breakpoint"
        assert stop.line == line

    def test_unknown_function_rejected(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        with pytest.raises(KeyError):
            dbg.break_at("nonexistent")

    def test_breakpoint_hit_count(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        bp = dbg.break_at("flush_buffer")
        dbg.cont()
        assert bp.hits == 1

    def test_delete_breakpoint(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        bp = dbg.break_at("main")
        dbg.delete(bp.number)
        stop = dbg.cont()
        assert stop.reason in ("bug", "exited", "done")


class TestSteppingAndInspection:
    def test_step_advances(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        first = dbg.where()
        dbg.step()
        assert dbg.where() != first

    def test_backtrace_in_nested_call(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        dbg.break_at("flush_buffer")
        dbg.cont()
        trace = dbg.backtrace()
        assert "flush_buffer" in trace[0]
        # flush_buffer is called from nl_close or nl_shutdown
        assert any("nl_" in frame for frame in trace[1:])

    def test_read_local_variable(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        line = next(
            i + 1 for i, text in enumerate(module.source_lines)
            if "int end = len" in text
        )
        dbg.break_at("main", line)
        stop = dbg.cont()
        assert stop.reason == "breakpoint"
        # The synthesized input need not equal the end user's ("abc"); any
        # separator-free content triggers the bug, so only len >= 1 holds.
        length = dbg.read_var("len")
        assert length >= 1

    def test_read_global_variable(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        dbg.break_at("nl_close")
        dbg.cont()
        assert dbg.read_var("nl_inited") == 1

    def test_read_array(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        dbg.run_to_end = dbg.cont()
        values = dbg.read_array("out", 3)
        assert len(values) == 3

    def test_info_threads_shows_blocked(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        stop = dbg.cont()
        assert stop.reason == "bug"
        rows = dbg.info_threads()
        blocked = [row for row in rows if "blocked" in row]
        assert len(blocked) >= 2  # the deadlocked pair

    def test_list_source_marks_current_line(self, tac_session):
        module, execution = tac_session
        dbg = Debugger(module, execution)
        dbg.step()
        listing = dbg.list_source()
        assert any(line.startswith("->") for line in listing)


class TestDeterminism:
    def test_restart_reproduces_stops(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        dbg.break_at("nl_shutdown")
        first = dbg.cont()
        dbg.restart()
        second = dbg.cont()
        assert (first.reason, first.function, first.line) == (
            second.reason, second.function, second.line,
        )

    def test_run_to_end_reports_bug(self, hawknl_session):
        module, execution = hawknl_session
        dbg = Debugger(module, execution)
        stop = dbg.cont()
        assert stop.reason == "bug"
        assert dbg.state.bug.kind is BugKind.DEADLOCK
