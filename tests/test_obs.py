"""The telemetry subsystem: span tracer, metrics registry, exports, and
the two invariants everything else depends on -- the disabled path is
free on the hot loop, and tracing never changes synthesized artifacts."""

import dataclasses
import json
import os
import time
import tracemalloc

import pytest

import repro.obs.trace as trace_mod
from repro.api import ReproSession
from repro.api.jobs import FOUND, JobSpec
from repro.cli import repro_main
from repro.core import ESDConfig
from repro.distrib import ParallelExplorer, parallel_supported
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    Tracer,
    check_metrics_document,
    check_trace_document,
    chrome_trace,
    counters_delta,
    load_trace,
    phase_summary,
    unified_registry,
)
from repro.obs.trace import _NULL_CONTEXT
from repro.schema import SchemaVersionError
from repro.service import ReproService
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.solver import Solver
from repro.workloads import get
from repro.workloads.ghttpd import hard_workload

OBS_DIR = os.path.dirname(trace_mod.__file__)


def instant_tracer(**kwargs):
    """A tracer that keeps every record(), however short."""
    tracer = Tracer(**kwargs)
    tracer.min_record_seconds = 0.0
    return tracer


# ---------------------------------------------------------------------------
# Span tree mechanics


class TestSpanTree:
    def test_nesting_and_parent_attribution(self):
        tracer = Tracer()
        outer = tracer.begin("session", "session")
        inner = tracer.begin("job:1", "job")
        assert inner.parent_id == outer.span_id
        leaf = tracer.begin("phase:search", "phase")
        assert leaf.parent_id == inner.span_id
        tracer.finish(leaf)
        sibling = tracer.begin("phase:solve", "phase")
        # After finishing a child, new spans attach to its parent again.
        assert sibling.parent_id == inner.span_id
        tracer.finish(sibling)
        tracer.finish(inner, {"found": True})
        tracer.finish(outer)
        assert inner.attrs["found"] is True
        assert all(not s.open for s in tracer.spans())

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("session", "session") as outer:
            with tracer.span("phase:static", "phase") as inner:
                assert inner.parent_id == outer.span_id
                assert tracer.current_span_id() == inner.span_id
        assert tracer.current_span_id() == 0
        assert len(tracer) == 2

    def test_record_filters_below_threshold(self):
        tracer = Tracer()
        tracer.min_record_seconds = 0.5
        now = time.perf_counter()
        tracer.record("solver.check", "solver-query", now, now + 0.001)
        assert len(tracer) == 0
        tracer.record("solver.check", "solver-query", now, now + 1.0)
        assert len(tracer) == 1

    def test_mark_records_instant_event(self):
        tracer = Tracer()  # default threshold would drop a 0-length span
        tracer.mark("bug", "bug", {"kind": "buffer-overflow"})
        (span,) = list(tracer.spans())
        assert span.kind == "bug" and span.attrs["kind"] == "buffer-overflow"
        assert span.duration() == 0.0

    def test_max_spans_drop_counter(self):
        tracer = instant_tracer(max_spans=2)
        for i in range(5):
            tracer.finish(tracer.begin(f"s{i}"))
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.to_document()["dropped"] == 3

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("x") is None
        tracer.finish(None)  # must accept the None begin() returned
        tracer.record("q", "solver-query", 0.0, 10.0)
        tracer.mark("bug")
        assert len(tracer) == 0
        # span() hands back one shared no-op context manager: nothing is
        # allocated per call on the disabled path.
        assert tracer.span("a") is _NULL_CONTEXT
        assert tracer.span("b") is tracer.span("c")
        with tracer.span("d") as span:
            assert span is None


# ---------------------------------------------------------------------------
# Trace document, Chrome export, phase attribution


class TestTraceDocument:
    def build(self):
        tracer = instant_tracer()
        with tracer.span("session", "session"):
            with tracer.span("job:j1", "job"):
                with tracer.span("phase:search", "phase"):
                    now = time.perf_counter()
                    tracer.record("solver.check", "solver-query",
                                  now, now + 0.001, {"result": "sat"})
        return tracer

    def test_document_round_trip(self, tmp_path):
        doc = self.build().to_document(meta={"program": "demo"})
        check_trace_document(doc)
        assert doc["format"] == "esd-trace-v1"
        assert doc["meta"]["program"] == "demo"
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc))
        loaded = load_trace(str(path))
        assert loaded["spans"] == doc["spans"]

    def test_open_spans_exported_clamped(self):
        tracer = Tracer()
        tracer.begin("session", "session")
        doc = tracer.to_document()
        (entry,) = doc["spans"]
        assert entry["open"] is True
        assert entry["end"] >= entry["start"]
        check_trace_document(doc)

    def test_rejects_wrong_format_and_bad_spans(self):
        with pytest.raises(SchemaVersionError):
            check_trace_document({"format": "esd-metrics-v1",
                                  "schema_version": 1, "spans": []})
        base = {"format": "esd-trace-v1", "schema_version": 1}
        bad_time = dict(base, spans=[{"id": 1, "parent": 0, "name": "x",
                                      "kind": "span", "start": 2.0, "end": 1.0}])
        with pytest.raises(ValueError):
            check_trace_document(bad_time)
        dup = dict(base, spans=[
            {"id": 1, "parent": 0, "name": "x", "kind": "span",
             "start": 0.0, "end": 1.0},
            {"id": 1, "parent": 0, "name": "y", "kind": "span",
             "start": 0.0, "end": 1.0},
        ])
        with pytest.raises(ValueError):
            check_trace_document(dup)

    def test_chrome_trace_events(self):
        doc = self.build().to_document()
        chrome = chrome_trace(doc)
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(doc["spans"])
        assert meta and all(e["name"] == "thread_name" for e in meta)
        by_name = {e["name"]: e for e in complete}
        query = by_name["solver.check"]
        assert query["cat"] == "solver-query"
        assert query["dur"] == pytest.approx(1000.0, rel=0.05)  # microseconds
        assert query["args"]["result"] == "sat"

    def test_phase_summary_attribution(self):
        tracer = instant_tracer()
        epoch = tracer.epoch
        job = tracer.begin("job:j1", "job")
        job.start, job.end = 0.0, 10.0
        for name, t0, t1 in (("phase:static", 0.0, 2.0),
                             ("phase:search", 2.0, 8.0),
                             ("phase:solve", 8.0, 9.5)):
            tracer.record(name, "phase", epoch + t0, epoch + t1)
        tracer.finish(job)
        summary = phase_summary(tracer.to_document())
        assert summary["jobs"] == 1
        assert summary["total_seconds"] == pytest.approx(10.0)
        assert summary["phase_seconds"]["search"] == pytest.approx(6.0)
        assert summary["coverage"] == pytest.approx(0.95)


# ---------------------------------------------------------------------------
# Cross-process transport (pool workers -> master)


class TestDrainIngest:
    def test_drain_returns_only_closed_spans(self):
        tracer = instant_tracer()
        open_span = tracer.begin("job", "job")
        tracer.finish(tracer.begin("phase:search", "phase"))
        shipped = tracer.drain()
        assert [s["name"] for s in shipped] == ["phase:search"]
        assert len(tracer) == 1  # the open job span stays buffered
        tracer.finish(open_span)

    def test_ingest_remaps_ids_and_reparents(self):
        worker = instant_tracer()
        parent = worker.begin("search.quantum", "search-quantum")
        now = time.perf_counter()
        worker.record("solver.check", "solver-query", now, now + 0.002)
        worker.finish(parent)

        master = instant_tracer()
        home = master.begin("phase:search", "phase")
        adopted = master.ingest(worker.drain(), worker=3,
                                parent_id=home.span_id)
        master.finish(home)
        assert adopted == 2
        spans = {s.name: s for s in master.spans()}
        quantum = spans["search.quantum"]
        query = spans["solver.check"]
        # Roots re-home under the master's phase span; the worker-local
        # parent/child edge survives the id remap.
        assert quantum.parent_id == home.span_id
        assert query.parent_id == quantum.span_id
        assert quantum.worker == 3 and query.worker == 3
        assert query.duration() == pytest.approx(0.002, rel=0.2)
        check_trace_document(master.to_document())


# ---------------------------------------------------------------------------
# Metrics registry


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("esd_jobs_total").inc()
        reg.counter("esd_jobs_total").inc(2)  # get-or-create: same object
        reg.gauge("esd_queue_depth").set(4)
        reg.gauge("esd_live", fn=lambda: 7.0)
        hist = reg.histogram("esd_job_seconds")
        hist.observe(0.0004)
        hist.observe(3.0)
        snap = check_metrics_document(reg.snapshot(meta={"tool": "test"}))
        metrics = snap["metrics"]
        assert metrics["esd_jobs_total"] == {"type": "counter", "value": 3}
        assert metrics["esd_queue_depth"]["value"] == 4
        assert metrics["esd_live"]["value"] == 7.0
        h = metrics["esd_job_seconds"]
        assert h["count"] == 2 and h["sum"] == pytest.approx(3.0004)
        assert h["buckets"] == list(DEFAULT_TIME_BUCKETS)
        assert sum(h["counts"]) == 2

    def test_cross_type_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("esd_thing")
        with pytest.raises(ValueError):
            reg.gauge("esd_thing")
        with pytest.raises(ValueError):
            reg.histogram("esd_thing")

    def test_bind_stats_sums_instances_and_handles_dicts(self):
        @dataclasses.dataclass
        class FakeStats:
            queries: int = 0
            label: str = "ignored"  # non-numeric fields are skipped

        a, b = FakeStats(queries=3), FakeStats(queries=4)
        reg = MetricsRegistry()
        reg.bind_stats("esd_fake", lambda: [a, b])
        reg.bind_stats("esd_totals", lambda: {"steps": 5, "ok": True})
        metrics = reg.snapshot()["metrics"]
        assert metrics["esd_fake_queries_total"]["value"] == 7
        assert metrics["esd_totals_steps_total"]["value"] == 5
        assert "esd_totals_ok_total" not in metrics  # bools are not counters
        a.queries += 10  # sampled, not copied: next snapshot sees the bump
        assert reg.snapshot()["metrics"]["esd_fake_queries_total"]["value"] == 17

    def test_counters_delta_is_the_interval_api(self):
        solver = Solver()
        reg = unified_registry(solver=solver)
        before = reg.snapshot()
        solver.check([1])
        solver.check([0])
        delta = counters_delta(reg.snapshot(), before)
        assert delta["esd_solver_queries_total"] == 2
        # Deltas ignore gauges/histograms and tolerate counters that are
        # new since the old snapshot.
        assert "esd_solver_cache_hit_rate" not in delta
        assert counters_delta(reg.snapshot(), before)[
            "esd_solver_queries_total"] == 2  # reading never resets anything

    def test_prometheus_rendition(self):
        reg = MetricsRegistry()
        reg.counter("esd_jobs_total", "jobs ever submitted").inc(2)
        reg.gauge("esd_queue_depth").set(1)
        hist = reg.histogram("esd_job_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = reg.to_prometheus()
        assert "# HELP esd_jobs_total jobs ever submitted" in text
        assert "# TYPE esd_jobs_total counter" in text
        assert "esd_jobs_total 2" in text
        assert "esd_queue_depth 1" in text
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'esd_job_seconds_bucket{le="0.1"} 1' in text
        assert 'esd_job_seconds_bucket{le="1"} 2' in text
        assert 'esd_job_seconds_bucket{le="+Inf"} 3' in text
        assert "esd_job_seconds_count 3" in text

    def test_rejects_wrong_format(self):
        with pytest.raises(SchemaVersionError):
            check_metrics_document({"format": "esd-trace-v1",
                                    "schema_version": 1, "metrics": {}})


# ---------------------------------------------------------------------------
# Session-level tracing: correctness gates from the issue


# Table 1 workloads with deterministic serial artifacts.
IDENTITY_WORKLOADS = ("tac", "paste", "mknod", "mkdir", "mkfifo", "minidb")


class TestSessionTracing:
    def test_traced_synth_emits_valid_trace_with_phase_coverage(self):
        workload = get("paste")
        session = ReproSession(workload.compile(), workers=1, trace=True)
        result = session.synthesize(workload.make_report())
        assert result.found
        doc = session.trace_document()
        check_trace_document(doc)
        kinds = {entry["kind"] for entry in doc["spans"]}
        assert {"session", "job", "phase"} <= kinds
        summary = phase_summary(doc)
        assert summary["jobs"] == 1
        # Acceptance gate: phase spans account for >= 95% of job wall-clock.
        assert summary["coverage"] >= 0.95
        assert {"static", "search", "solve"} <= set(summary["phase_seconds"])

    @pytest.mark.parametrize("name", IDENTITY_WORKLOADS)
    def test_artifacts_byte_identical_traced_vs_untraced(self, name):
        workload = get(name)
        report = workload.make_report()
        # workers=1 pins the serial engine regardless of REPRO_WORKERS:
        # pool first-win nondeterminism is not what this test measures.
        plain = ReproSession(workload.compile(), workers=1).synthesize(report)
        traced_session = ReproSession(workload.compile(), workers=1, trace=True)
        traced = traced_session.synthesize(report)
        assert plain.found and traced.found
        assert (plain.execution_file.canonical_bytes()
                == traced.execution_file.canonical_bytes())
        check_trace_document(traced_session.trace_document())

    def test_untraced_synth_allocates_nothing_in_obs(self):
        """The disabled path on the hot loop: zero allocations attributed
        to the obs package across a whole untraced synthesis."""
        workload = get("mkdir")
        session = ReproSession(workload.compile(), workers=1)  # tracer off
        report = workload.make_report()
        tracemalloc.start()
        try:
            result = session.synthesize(report)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        assert result.found
        obs_allocs = [
            stat for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.startswith(OBS_DIR)
        ]
        assert obs_allocs == []

    def test_save_trace_and_metrics_surface(self, tmp_path):
        workload = get("tac")
        session = ReproSession(workload.compile(), workers=1, trace=True)
        assert session.synthesize(workload.make_report()).found
        path = tmp_path / "trace.json"
        session.save_trace(path)
        assert load_trace(str(path))["meta"]["module"] == workload.name
        snap = check_metrics_document(session.metrics())
        assert snap["metrics"]["esd_solver_queries_total"]["value"] > 0


pool_required = pytest.mark.skipif(not parallel_supported(),
                                   reason="parallel pool requires fork")


@pool_required
class TestPoolTracing:
    def test_worker_spans_merge_into_master_trace(self):
        workload = hard_workload(4)
        tracer = Tracer()
        pool = ParallelExplorer(workload.compile(), workload.make_report(),
                                ESDConfig(), workers=2, tracer=tracer)
        assert pool.run().found
        doc = tracer.to_document()
        check_trace_document(doc)
        workers = {entry.get("worker", -1) for entry in doc["spans"]}
        assert any(w >= 0 for w in workers)  # worker-attributed spans arrived
        kinds = {entry["kind"] for entry in doc["spans"]}
        assert {"job", "phase", "search-quantum"} <= kinds
        # Worker spans re-parented under this trace: every parent reference
        # resolves inside the document.
        ids = {entry["id"] for entry in doc["spans"]}
        roots = [e for e in doc["spans"] if e["parent"] == 0]
        assert all(e["parent"] in ids for e in doc["spans"]
                   if e["parent"] != 0)
        assert len(roots) == 1  # single job root, nothing left dangling


# ---------------------------------------------------------------------------
# Service: /metrics, /healthz, per-job traces under concurrency


@pytest.fixture(scope="module")
def traced_daemon():
    service = ReproService(max_workers=2, trace_jobs=True)
    daemon = ServiceDaemon(service, port=0)
    daemon.start()
    yield daemon
    daemon.stop(graceful=False)


@pytest.fixture(scope="module")
def traced_client(traced_daemon):
    return ServiceClient(traced_daemon.url)


class TestServiceObservability:
    def test_metrics_and_healthz_under_concurrent_jobs(self, traced_client):
        client = traced_client
        jobs = [client.submit(JobSpec(workload=name))["job_id"]
                for name in ("tac", "mkdir", "paste")]
        for job_id in jobs:
            assert client.wait(job_id, timeout=120)["state"] == FOUND

        snap = check_metrics_document(client.metrics())
        metrics = snap["metrics"]
        assert metrics["esd_service_jobs_submitted_total"]["value"] >= 3
        assert metrics["esd_solver_queries_total"]["value"] > 0
        assert metrics["esd_job_seconds"]["count"] >= 3

        text = client.metrics_text()
        for family in ("esd_service_jobs_submitted_total",
                       "esd_service_queue_depth",
                       "esd_solver_queries_total",
                       "esd_job_seconds_bucket"):
            assert family in text

        health = client.health()
        assert health["ok"] is True
        assert health["jobs"].get("FOUND", 0) >= 3
        assert health["workers"]["max"] == 2
        assert health["jobs_total"] == sum(health["jobs"].values())

    def test_per_job_trace_artifact(self, traced_client):
        client = traced_client
        job_id = client.submit(JobSpec(workload="mkfifo"))["job_id"]
        record = client.wait(job_id, timeout=120)
        assert record["state"] == FOUND
        assert "trace" in record["artifacts"]
        raw = client.fetch_job_artifact(job_id, kind="trace")
        doc = check_trace_document(json.loads(raw))
        assert doc["meta"]["job_id"] == job_id
        assert phase_summary(doc)["jobs"] == 1


# ---------------------------------------------------------------------------
# CLI verbs and bench schema


class TestCliObservability:
    @pytest.fixture()
    def traced_synth(self, tmp_path):
        workload = get("tac")
        program = tmp_path / "tac.minic"
        program.write_text(workload.source)
        dump = tmp_path / "report.json"
        dump.write_text(json.dumps(workload.make_report().to_dict()))
        trace_path = tmp_path / "trace.json"
        code = repro_main(["synth", str(dump), str(program), "--crash",
                           "-o", str(tmp_path / "exec.json"),
                           "--workers", "1", "--trace", str(trace_path)])
        assert code == 0
        return trace_path, tmp_path

    def test_synth_trace_flag_writes_valid_trace(self, traced_synth):
        trace_path, _ = traced_synth
        doc = load_trace(str(trace_path))
        assert phase_summary(doc)["jobs"] >= 1

    def test_trace_verb_summary_and_chrome(self, traced_synth, capsys):
        trace_path, tmp_path = traced_synth
        assert repro_main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out and "search" in out

        assert repro_main(["trace", str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["coverage"] > 0

        chrome_path = tmp_path / "chrome.json"
        assert repro_main(["trace", str(trace_path),
                           "--chrome", str(chrome_path)]) == 0
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]

    def test_trace_verb_rejects_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "not_a_trace.json"
        bogus.write_text(json.dumps({"format": "esd-execution-file-v1"}))
        assert repro_main(["trace", str(bogus)]) == 1
        assert "not a trace" in capsys.readouterr().err

    def test_stats_verb_against_live_daemon(self, traced_daemon, capsys):
        url = traced_daemon.url
        assert repro_main(["stats", "--url", url]) == 0
        assert "esd_solver_queries_total" in capsys.readouterr().out

        assert repro_main(["stats", "--url", url, "--json"]) == 0
        snap = check_metrics_document(json.loads(capsys.readouterr().out))
        assert snap["meta"]["component"] == "service"

        assert repro_main(["stats", "--url", url, "--prometheus"]) == 0
        assert "# TYPE esd_job_seconds histogram" in capsys.readouterr().out

    def test_bench_json_carries_metrics_snapshot(self, capsys):
        assert repro_main(["bench", "--workload", "tac", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        snap = check_metrics_document(data["metrics"])
        queries = snap["metrics"]["esd_solver_queries_total"]["value"]
        assert queries > 0
        # Legacy keys are derived from the same snapshot, not raw reads.
        assert data["solver"]["queries"] == queries
