"""The content-addressed artifact store: addressing, index, jobs, GC."""

import json

import pytest

from repro.schema import canonical_json_bytes, content_digest
from repro.store import (
    STORE_FORMAT,
    ArtifactStore,
    StoreError,
    UnknownArtifactError,
)


class TestContentAddressing:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        digest = store.put_bytes(b"hello", kind="blob")
        assert digest == content_digest(b"hello")
        assert store.get_bytes(digest) == b"hello"
        assert store.kind(digest) == "blob"
        assert digest in store and len(store) == 1

    def test_put_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = store.put_bytes(b"data", kind="a")
        second = store.put_bytes(b"data", kind="b")
        assert first == second
        assert len(store) == 1
        # First writer wins the kind label: same content, same object.
        assert store.kind(first) == "a"

    def test_json_canonicalization(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        a = store.put_json({"b": 1, "a": [1, 2]})
        b = store.put_json({"a": [1, 2], "b": 1})  # key order irrelevant
        assert a == b
        assert store.get_json(a) == {"a": [1, 2], "b": 1}

    def test_unknown_digest_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(UnknownArtifactError):
            store.get_bytes("0" * 64)

    def test_memory_mode(self):
        store = ArtifactStore()  # no root: in-memory
        assert not store.persistent
        digest = store.put_json({"x": 1})
        assert store.get_json(digest) == {"x": 1}
        store.save_job("j1", {"state": "QUEUED"})
        assert store.load_jobs() == {"j1": {"state": "QUEUED"}}


class TestIndexPersistence:
    def test_reopen_sees_objects(self, tmp_path):
        root = tmp_path / "store"
        digest = ArtifactStore(root).put_bytes(b"persisted", kind="exec")
        reopened = ArtifactStore(root)
        assert reopened.get_bytes(digest) == b"persisted"
        assert reopened.kind(digest) == "exec"

    def test_index_is_versioned(self, tmp_path):
        root = tmp_path / "store"
        ArtifactStore(root).put_bytes(b"x")
        index = json.loads((root / "index.json").read_text())
        assert index["format"] == STORE_FORMAT
        assert index["schema_version"] == 1

    def test_unknown_index_version_rejected(self, tmp_path):
        root = tmp_path / "store"
        ArtifactStore(root).put_bytes(b"x")
        index = json.loads((root / "index.json").read_text())
        index["schema_version"] = 99
        (root / "index.json").write_text(json.dumps(index))
        with pytest.raises(StoreError, match="schema version"):
            ArtifactStore(root)

    def test_foreign_index_rejected(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "index.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(StoreError, match="not an artifact-store index"):
            ArtifactStore(root)


class TestJobRecords:
    def test_save_and_load_jobs(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save_job("j00001-abc", {"state": "QUEUED", "n": 1})
        store.save_job("j00002-def", {"state": "FOUND", "n": 2})
        reopened = ArtifactStore(tmp_path / "store")
        jobs = reopened.load_jobs()
        assert jobs["j00001-abc"]["state"] == "QUEUED"
        assert jobs["j00002-def"]["n"] == 2

    def test_save_job_overwrites(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save_job("j1", {"state": "QUEUED"})
        store.save_job("j1", {"state": "FOUND"})
        assert store.load_jobs()["j1"]["state"] == "FOUND"


class TestGC:
    def test_gc_sweeps_unreferenced(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        live = store.put_bytes(b"live")
        dead = store.put_bytes(b"dead")
        removed = store.gc([live])
        assert removed == [dead]
        assert live in store and dead not in store
        assert store.get_bytes(live) == b"live"
        # The object file itself is gone, not just the index entry.
        assert not (tmp_path / "store" / "objects" / dead[:2] / dead).exists()

    def test_gc_survives_reopen(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        live = store.put_bytes(b"live")
        store.put_bytes(b"dead")
        store.gc([live])
        assert len(ArtifactStore(tmp_path / "store")) == 1


def test_digest_matches_canonical_bytes():
    payload = {"z": 0, "a": "é"}
    assert content_digest(canonical_json_bytes(payload)) == content_digest(
        canonical_json_bytes({"a": "é", "z": 0})
    )
