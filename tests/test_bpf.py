"""Tests for the BPF synthetic-program generator."""

import pytest

from repro import ir
from repro.bpf import BPFParams, generate
from repro.core import ESDConfig, esd_synthesize
from repro.playback import play_back
from repro.search import SearchBudget
from repro.symbex import BugKind


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = generate(BPFParams(seed=5))
        b = generate(BPFParams(seed=5))
        assert a.source == b.source

    def test_different_seeds_differ(self):
        a = generate(BPFParams(seed=5))
        b = generate(BPFParams(seed=6))
        assert a.source != b.source

    def test_compiles_and_verifies(self):
        program = generate(BPFParams(num_branches=32, seed=1))
        module = program.workload.compile()
        ir.verify_module(module)

    def test_branch_count_scales_module(self):
        small = generate(BPFParams(num_branches=16, seed=2)).workload.compile()
        large = generate(BPFParams(num_branches=128, seed=2)).workload.compile()
        assert large.size > small.size * 3

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            BPFParams(num_threads=1)
        with pytest.raises(ValueError):
            BPFParams(num_locks=1)
        with pytest.raises(ValueError):
            BPFParams(num_branches=4, num_input_branches=8)

    def test_kloc_reported(self):
        program = generate(BPFParams(num_branches=64, seed=3))
        assert 0.1 < program.kloc < 2.0

    def test_key_inputs_recorded(self):
        program = generate(BPFParams(num_branches=32, seed=4))
        assert program.key_inputs
        for index, value in program.key_inputs.items():
            assert 0 <= index < program.params.num_inputs
            assert 33 <= value < 127


class TestTriggerAndClean:
    def test_trigger_deadlocks(self):
        program = generate(BPFParams(num_branches=32, seed=8))
        module, state = program.workload.trigger()
        assert state.bug.kind is BugKind.DEADLOCK

    def test_wrong_inputs_do_not_deadlock(self):
        """With the gate closed the lock order is consistent: no deadlock
        regardless of schedule (one deadlock bug per program)."""
        from repro.baselines import RandomSchedulePolicy
        from repro.symbex import ConcreteEnv, Executor, RecordedInputs

        program = generate(BPFParams(num_branches=32, seed=8))
        module = program.workload.compile()
        wrong = RecordedInputs(stdin=[0] * program.params.num_inputs)
        for seed in range(10):
            executor = Executor(
                module, env=ConcreteEnv(wrong),
                policy=RandomSchedulePolicy(seed=seed),
            )
            state = executor.run_to_completion(executor.initial_state())
            assert state.status == "exited", f"seed {seed}: {state.status}"

    def test_more_threads_and_locks(self):
        program = generate(
            BPFParams(num_branches=24, num_threads=4, num_locks=3, seed=9)
        )
        module, state = program.workload.trigger()
        assert state.bug.kind is BugKind.DEADLOCK


class TestSynthesisOnBPF:
    def test_esd_reproduces_small_bpf_deadlock(self):
        program = generate(
            BPFParams(num_inputs=8, num_branches=16, num_input_branches=16, seed=7)
        )
        workload = program.workload
        module = workload.compile()
        report = workload.make_report()
        result = esd_synthesize(
            module, report, ESDConfig(budget=SearchBudget(max_seconds=60))
        )
        assert result.found, result.reason
        playback = play_back(module, result.execution_file, mode="strict")
        assert playback.bug_reproduced
        # The synthesized stdin must satisfy every key-branch equation.
        stdin = result.execution_file.inputs.stdin
        for index, value in program.key_inputs.items():
            assert stdin[index] == value
